#include "src/exp/cluster_experiment.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/common/wallclock.h"
#include "src/replay/decision_recorder.h"
#include "src/replay/probe_key.h"
#include "src/replay/replay_source.h"

namespace mudi {
namespace {

constexpr double kDefaultReplicaQps = 200.0;  // mean inter-arrival 5 ms (§7.1)
constexpr double kInitialInferenceFraction = 0.5;
constexpr int kInitialBatch = 64;
// Queue cap as a multiple of the batching size: beyond it, oldest requests
// are shed and counted as worst-case latency (overload).
constexpr double kQueueCapBatches = 50.0;

double WeightedP99(const std::vector<std::pair<double, double>>& samples) {
  if (samples.empty()) {
    return 0.0;
  }
  std::vector<std::pair<double, double>> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  double total = 0.0;
  for (const auto& [lat, w] : sorted) {
    total += w;
  }
  double target = 0.99 * total;
  double cum = 0.0;
  for (const auto& [lat, w] : sorted) {
    cum += w;
    if (cum >= target) {
      return lat;
    }
  }
  return sorted.back().first;
}

// RAII decision scope around one policy hook: opens the recorder's decision,
// snapshots the state the policy can observe (all devices for cluster-wide
// hooks, just the target for per-device ones), and measures the hook's wall
// latency. A null recorder makes the whole scope a no-op — the timer is not
// even started, so an unrecorded run never reads the clock here.
class DecisionScope {
 public:
  enum class Snapshot { kNone, kDevice, kAll };

  DecisionScope(replay::DecisionRecorder* recorder, ClusterState& cluster,
                replay::HookKind hook, double sim_ms, Snapshot snapshot, int device_id = -1,
                int task_id = -1, int type_index = -1)
      : recorder_(recorder) {
    if (recorder_ == nullptr) {
      return;
    }
    recorder_->BeginDecision(hook, sim_ms, device_id, task_id, type_index);
    if (snapshot == Snapshot::kAll) {
      for (const GpuDevice& dev : cluster.devices()) {
        recorder_->AddSnapshotDevice(replay::MakeSnapshotDevice(dev));
      }
    } else if (snapshot == Snapshot::kDevice) {
      recorder_->AddSnapshotDevice(
          replay::MakeSnapshotDevice(cluster.device(static_cast<size_t>(device_id))));
    }
    timer_.Restart();
  }

  ~DecisionScope() {
    if (recorder_ != nullptr) {
      recorder_->EndDecision(timer_.ElapsedMs() * 1000.0);
    }
  }

  DecisionScope(const DecisionScope&) = delete;
  DecisionScope& operator=(const DecisionScope&) = delete;

  replay::DecisionRecorder* recorder() { return recorder_; }

 private:
  replay::DecisionRecorder* recorder_;
  WallTimer timer_{WallTimer::Unstarted{}};
};

}  // namespace

ClusterExperiment::ClusterExperiment(ExperimentOptions options, MultiplexPolicy* policy)
    : options_(std::move(options)),
      policy_(policy),
      telemetry_([this] {
        TelemetryOptions t = options_.telemetry;
        t.ApplyEnvOverrides();
        return t;
      }()),
      oracle_(options_.oracle_seed),
      cluster_(options_.num_nodes, NodeSpec{options_.gpus_per_node, ModelZoo::kGpuMemoryMb}),
      rng_(options_.seed),
      probe_rng_(options_.seed ^ 0xABCDEFull),
      queue_(options_.queue_policy) {
  MUDI_CHECK(policy_ != nullptr);
  MUDI_CHECK_GT(options_.num_services, 0u);
  MUDI_CHECK_LE(options_.num_services, ModelZoo::InferenceServices().size());
  MUDI_CHECK_GT(options_.checkpoint_period_ms, 0.0);
  fault_injector_ = std::make_unique<FaultInjector>(&sim_, this,
                                                    static_cast<int>(cluster_.num_devices()),
                                                    options_.num_nodes, &telemetry_);
  // Opt-in tombstone delete events (forced on later if a control fault plan
  // arms): must be set before the first Put so revision numbering is
  // consistent for the whole run.
  if (options_.registry_delete_events) {
    registry_.EnableDeleteEvents(true);
  }

  // Place one inference replica per device, service round-robin.
  replicas_.resize(cluster_.num_devices());
  for (size_t d = 0; d < cluster_.num_devices(); ++d) {
    size_t service_index = (d % options_.num_services + options_.service_offset) %
                           ModelZoo::InferenceServices().size();
    const InferenceServiceSpec& spec = ModelZoo::InferenceServices()[service_index];
    InferenceInstance instance;
    instance.service_index = service_index;
    instance.batch_size = kInitialBatch;
    instance.gpu_fraction = kInitialInferenceFraction;
    instance.mem_required_mb = InferenceMemoryMb(spec, kInitialBatch);
    cluster_.device(d).PlaceInference(instance);

    Replica& r = replicas_[d];
    if (options_.qps_factory) {
      r.qps = options_.qps_factory(service_index, static_cast<int>(d));
    } else {
      r.qps = std::make_shared<ConstantQps>(kDefaultReplicaQps);
    }
    registry_.Put(DeviceStatusKey(static_cast<int>(d)), "up");
  }

  // Self-profiling wiring: resolve the per-decision region stats once; a
  // null collector leaves the cached pointers null and every region a no-op.
  if (perf::PerfCollector* collector = perf()) {
    perf_select_stat_ = &collector->GetRegionStat("policy.select_device");
    perf_place_stat_ = &collector->GetRegionStat("policy.on_placed");
    perf_qps_stat_ = &collector->GetRegionStat("policy.on_qps_change");
  }

  // Telemetry wiring: every instrumented component checks enabled() itself
  // and keeps a null sink otherwise, so this is safe unconditionally.
  sim_.SetTelemetry(&telemetry_);
  oracle_.SetTelemetry(&telemetry_);
  queue_.SetTelemetry(&telemetry_);
  memory_manager_.SetTelemetry(&telemetry_);
  for (size_t d = 0; d < cluster_.num_devices(); ++d) {
    cluster_.device(d).SetTelemetry(&telemetry_);
    replicas_[d].monitor.SetTelemetry(&telemetry_, static_cast<int>(d));
  }
  if (telemetry_.tracing_enabled()) {
    telemetry_.trace().SetProcessName("mudi-cluster-experiment");
    for (size_t d = 0; d < cluster_.num_devices(); ++d) {
      telemetry_.trace().SetThreadName(
          static_cast<int>(d),
          "gpu" + std::to_string(d) + " [" + ServiceOnDevice(static_cast<int>(d)).name + "]");
    }
    telemetry_.trace().SetThreadName(static_cast<int>(cluster_.num_devices()), "scheduler");
  }
}

ClusterExperiment::~ClusterExperiment() = default;

TimeMs ClusterExperiment::Now() const { return sim_.Now(); }

std::vector<GpuDevice>& ClusterExperiment::devices() { return cluster_.devices(); }

const GpuDevice& ClusterExperiment::device(int device_id) const {
  return cluster_.device(static_cast<size_t>(device_id));
}

const InferenceServiceSpec& ClusterExperiment::ServiceOnDevice(int device_id) const {
  const GpuDevice& dev = device(device_id);
  return ModelZoo::InferenceServices()[dev.inference().service_index];
}

double ClusterExperiment::MeasuredQps(int device_id) {
  double qps = replicas_[static_cast<size_t>(device_id)].monitor.CurrentQps(sim_.Now());
  // Policy-facing monitor reads made inside a decision are part of the
  // decision's observation set (harness-internal reads go straight to the
  // monitor and are not recorded).
  if (options_.recorder != nullptr && options_.recorder->decision_open()) {
    options_.recorder->RecordQpsFeedback(sim_.Now(), device_id, /*is_p99=*/false, qps);
  }
  return qps;
}

double ClusterExperiment::MeasuredP99(int device_id) {
  double p99 = replicas_[static_cast<size_t>(device_id)].monitor.P99LatencyMs();
  if (options_.recorder != nullptr && options_.recorder->decision_open()) {
    options_.recorder->RecordQpsFeedback(sim_.Now(), device_id, /*is_p99=*/true, p99);
  }
  return p99;
}

std::vector<ColocatedTraining> ClusterExperiment::ActiveColocation(const GpuDevice& dev) const {
  const auto& tasks = ModelZoo::TrainingTasks();
  std::vector<ColocatedTraining> out;
  for (const auto& t : dev.trainings()) {
    if (!t.paused) {
      out.push_back(ColocatedTraining{&tasks[t.type_index], t.gpu_fraction});
    }
  }
  return out;
}

InferenceLoad ClusterExperiment::CurrentInferenceLoad(int device_id) {
  const GpuDevice& dev = device(device_id);
  InferenceLoad load;
  load.spec = &ServiceOnDevice(device_id);
  load.batch_size = dev.inference().batch_size;
  load.gpu_fraction = dev.inference().gpu_fraction;
  // Direct monitor read, NOT MeasuredQps: this is harness-internal plumbing
  // for probe construction, and the decision trace must only carry the
  // policy's own feedback reads (every probe already embeds the QPS in its
  // content key).
  load.qps = replicas_[static_cast<size_t>(device_id)].monitor.CurrentQps(sim_.Now());
  return load;
}

double ClusterExperiment::ProbeInferenceLatencyMs(int device_id, int batch,
                                                  double gpu_fraction) {
  const GpuDevice& dev = device(device_id);
  uint64_t key = 0;
  if (options_.recorder != nullptr || options_.replay != nullptr) {
    replay::ColocationMix mix;
    mix.reserve(dev.trainings().size());
    for (const auto& t : dev.trainings()) {
      if (!t.paused) {
        mix.emplace_back(static_cast<uint32_t>(t.type_index), t.gpu_fraction);
      }
    }
    key = replay::InferenceProbeKey(static_cast<uint32_t>(dev.inference().service_index), batch,
                                    gpu_fraction, mix, dev.EffectiveComputeScale());
    if (options_.replay != nullptr) {
      if (auto recorded = options_.replay->TakeObservation(key)) {
        // Served from the trace: the oracle and probe_rng_ are untouched, so
        // the replayed noise stream stays aligned with the recorded run.
        return *recorded;
      }
    }
  }
  auto colocated = ActiveColocation(dev);
  double lat = oracle_
                   .ObserveInferenceBatchLatency(ServiceOnDevice(device_id), batch, gpu_fraction,
                                                 colocated, probe_rng_)
                   .total_ms();
  lat /= dev.EffectiveComputeScale();
  if (options_.recorder != nullptr) {
    options_.recorder->RecordObservation(replay::ObsKind::kProbeInference, sim_.Now(), device_id,
                                         key, lat);
  }
  return lat;
}

double ClusterExperiment::ProbeTrainingIterMs(int device_id, int task_id, double train_fraction,
                                              int inf_batch, double inf_fraction) {
  const GpuDevice& dev = device(device_id);
  const TrainingInstance* instance = dev.FindTraining(task_id);
  MUDI_CHECK(instance != nullptr);
  const auto& tasks = ModelZoo::TrainingTasks();
  const TrainingTaskSpec& spec = tasks[instance->type_index];

  InferenceLoad load = CurrentInferenceLoad(device_id);
  if (inf_batch > 0) {
    load.batch_size = inf_batch;
  }
  if (inf_fraction > 0.0) {
    load.gpu_fraction = inf_fraction;
  }
  std::vector<ColocatedTraining> others;
  for (const auto& t : dev.trainings()) {
    if (!t.paused && t.task_id != task_id) {
      others.push_back(ColocatedTraining{&tasks[t.type_index], t.gpu_fraction});
    }
  }
  double frac = train_fraction > 0.0 ? train_fraction : instance->gpu_fraction;
  double clamped = std::clamp(frac, 0.02, 1.0);
  // The what-if must anticipate the memory pressure of the probed inference
  // batch: a larger batch can force this task's working set to swap, and the
  // Training Agent would observe those slower (paged) iterations.
  TrainingInstance hypothetical = *instance;
  if (inf_batch > 0) {
    double inf_mem = InferenceMemoryMb(*load.spec, inf_batch);
    double required = inf_mem;
    for (const auto& t : dev.trainings()) {
      required += t.mem_required_mb;
    }
    double deficit = std::max(0.0, required - dev.memory_mb());
    hypothetical.mem_swapped_mb = std::min(deficit, 0.85 * instance->mem_required_mb);
  }
  double swap_factor = MemoryManager::SwapSlowdownFactor(hypothetical);

  uint64_t key = 0;
  if (options_.recorder != nullptr || options_.replay != nullptr) {
    replay::ColocationMix others_mix;
    others_mix.reserve(others.size());
    for (const auto& t : dev.trainings()) {
      if (!t.paused && t.task_id != task_id) {
        others_mix.emplace_back(static_cast<uint32_t>(t.type_index), t.gpu_fraction);
      }
    }
    key = replay::TrainingProbeKey(
        static_cast<uint32_t>(instance->type_index), clamped,
        static_cast<uint32_t>(dev.inference().service_index), load.batch_size, load.gpu_fraction,
        load.qps, others_mix, swap_factor, dev.EffectiveComputeScale());
    if (options_.replay != nullptr) {
      if (auto recorded = options_.replay->TakeObservation(key)) {
        return *recorded;
      }
    }
  }
  double iter = oracle_.ObserveTrainingIterationMs(spec, clamped, load, others, probe_rng_);
  double result = iter * swap_factor / dev.EffectiveComputeScale();
  if (options_.recorder != nullptr) {
    options_.recorder->RecordObservation(replay::ObsKind::kProbeTraining, sim_.Now(), device_id,
                                         key, result);
  }
  return result;
}

void ClusterExperiment::ApplyInferenceConfig(int device_id, int batch, double gpu_fraction) {
  MUDI_CHECK_GT(batch, 0);
  MUDI_CHECK_GT(gpu_fraction, 0.0);
  MUDI_CHECK_LE(gpu_fraction, 1.0);
  // Record the policy's intent at the actuation boundary (before the
  // control-plane/no-op branches): the trace captures what was decided, not
  // what the (possibly degraded) delivery path made of it.
  if (options_.recorder != nullptr && options_.recorder->decision_open()) {
    options_.recorder->AddAction(replay::ActionKind::kApplyInferenceConfig, device_id, batch,
                                 gpu_fraction);
  }
  if (!ctrl_enabled_) {
    ApplyInferenceConfigDirect(device_id, batch, gpu_fraction);
    return;
  }
  // Control-plane delivery (DESIGN.md §13): the scheduler publishes the
  // tuned config to the registry; the device agent's watch applies it when
  // (and if) the notification arrives. Under degradation the update can be
  // delayed, dropped, or lost to a partition — the periodic retune rewrites
  // the key, bounding how long a lost config stays lost.
  ++configs_published_;
  // The publication sequence number lets the device agent deduplicate
  // deliveries that arrive both through its watch and a catch-up read.
  char encoded[96];
  std::snprintf(encoded, sizeof(encoded), "%llu|%d|%.17g",
                static_cast<unsigned long long>(configs_published_), batch, gpu_fraction);
  registry_.Put(SchedConfigKey(device_id), encoded);
}

void ClusterExperiment::ApplyInferenceConfigDirect(int device_id, int batch,
                                                   double gpu_fraction) {
  GpuDevice& dev = cluster_.device(static_cast<size_t>(device_id));
  if (!dev.healthy()) {
    return;  // dead replica: nothing to configure (degrade gracefully)
  }
  Replica& r = replicas_[static_cast<size_t>(device_id)];
  InferenceInstance& inf = dev.mutable_inference();

  // Batch updates are a serving-loop parameter: immediate (§5.3.1).
  inf.batch_size = batch;
  inf.mem_required_mb = InferenceMemoryMb(ServiceOnDevice(device_id), batch);
  RebalanceMemory(device_id);

  double delta = std::abs(gpu_fraction - inf.gpu_fraction);
  if (delta < 1e-6) {
    UpdateTrainingSpeeds(device_id);
    return;
  }
  // GPU% updates ride the shadow instance: effective after the
  // reconfiguration latency. A request matching the in-flight shadow keeps
  // it (otherwise periodic retunes with the same target would restart the
  // shadow forever and the config would never land); a different target
  // supersedes it.
  if (r.pending_config.has_value() && r.pending_config->first == batch &&
      std::abs(r.pending_config->second - gpu_fraction) < 1e-6) {
    UpdateTrainingSpeeds(device_id);
    return;
  }
  if (r.pending_event != Simulator::kInvalidEventId) {
    sim_.Cancel(r.pending_event);
    r.pending_event = Simulator::kInvalidEventId;
  }
  r.pending_config = {batch, gpu_fraction};
  if (telemetry_.enabled()) {
    telemetry_.metrics().GetCounter("serving.reconfigs").Increment();
    MUDI_TRACE_INSTANT(&telemetry_, "config", "reconfig_start", device_id, sim_.Now(),
                       telemetry::TraceArgs{
                           telemetry::TraceArg::Num("batch", batch),
                           telemetry::TraceArg::Num("fraction", gpu_fraction)});
  }
  r.pending_event = sim_.ScheduleAfter(options_.reconfig_latency_ms, [this, device_id] {
    Replica& rep = replicas_[static_cast<size_t>(device_id)];
    if (!rep.pending_config.has_value()) {
      return;
    }
    auto [b, g] = *rep.pending_config;
    rep.pending_config.reset();
    rep.pending_event = Simulator::kInvalidEventId;
    GpuDevice& d = cluster_.device(static_cast<size_t>(device_id));
    d.mutable_inference().batch_size = b;
    d.mutable_inference().gpu_fraction = g;
    d.mutable_inference().mem_required_mb = InferenceMemoryMb(ServiceOnDevice(device_id), b);
    MUDI_TRACE_INSTANT(&telemetry_, "config", "reconfig_done", device_id, sim_.Now(),
                       telemetry::TraceArgs{telemetry::TraceArg::Num("batch", b),
                                            telemetry::TraceArg::Num("fraction", g)});
    RebalanceMemory(device_id);
    UpdateTrainingSpeeds(device_id);
  });
  UpdateTrainingSpeeds(device_id);
}

void ClusterExperiment::ApplyTrainingFraction(int device_id, int task_id, double fraction) {
  MUDI_CHECK_GT(fraction, 0.0);
  if (options_.recorder != nullptr && options_.recorder->decision_open()) {
    options_.recorder->AddAction(replay::ActionKind::kApplyTrainingFraction, device_id, task_id,
                                 fraction);
  }
  GpuDevice& dev = cluster_.device(static_cast<size_t>(device_id));
  if (!dev.healthy()) {
    return;
  }
  TrainingInstance* instance = dev.FindTraining(task_id);
  MUDI_CHECK(instance != nullptr);
  SyncTrainingProgress(device_id, task_id);
  instance->gpu_fraction = std::min(fraction, 1.0);
  UpdateTrainingSpeeds(device_id);
}

void ClusterExperiment::SetTrainingPaused(int device_id, int task_id, bool paused) {
  if (options_.recorder != nullptr && options_.recorder->decision_open()) {
    options_.recorder->AddAction(replay::ActionKind::kSetTrainingPaused, device_id, task_id,
                                 paused ? 1.0 : 0.0);
  }
  GpuDevice& dev = cluster_.device(static_cast<size_t>(device_id));
  if (!dev.healthy()) {
    return;
  }
  TrainingInstance* instance = dev.FindTraining(task_id);
  MUDI_CHECK(instance != nullptr);
  if (instance->paused == paused) {
    return;
  }
  SyncTrainingProgress(device_id, task_id);
  instance->paused = paused;
  if (telemetry_.enabled()) {
    telemetry_.metrics()
        .GetCounter(paused ? "training.pauses" : "training.resumes")
        .Increment();
    MUDI_TRACE_INSTANT(&telemetry_, "tuning", paused ? "pause_training" : "resume_training",
                       device_id, sim_.Now(),
                       telemetry::TraceArgs{telemetry::TraceArg::Num("task_id", task_id)});
  }
  UpdateTrainingSpeeds(device_id);
}

bool ClusterExperiment::CanFitTraining(int device_id, const TrainingTaskSpec& spec) const {
  const GpuDevice& dev = device(device_id);
  return dev.MemoryRequiredMb() + TrainingMemoryMb(spec) <= dev.memory_mb();
}

void ClusterExperiment::RebalanceMemory(int device_id) {
  GpuDevice& dev = cluster_.device(static_cast<size_t>(device_id));
  if (!policy_->SupportsMemorySwap()) {
    return;  // non-swap policies never overcommit (placement enforces fit)
  }
  memory_manager_.Rebalance(dev, sim_.Now());
}

// ---------------------------------------------------------------------------
// Serving path
// ---------------------------------------------------------------------------

TimeMs ClusterExperiment::WaitTimeoutMs(int device_id) const {
  const InferenceServiceSpec& spec = ServiceOnDevice(device_id);
  return std::clamp(0.25 * spec.slo_ms, 5.0, 400.0);
}

TimeMs ClusterExperiment::ArrivalTickMs(int device_id) const {
  if (options_.arrival_tick_ms > 0.0) {
    return options_.arrival_tick_ms;
  }
  return std::clamp(ServiceOnDevice(device_id).slo_ms / 15.0, 5.0, 100.0);
}

void ClusterExperiment::ArrivalTick(int device_id) {
  Replica& r = replicas_[static_cast<size_t>(device_id)];
  if (!device(device_id).healthy()) {
    return;  // the periodic event is cancelled at failure; belt and braces
  }
  TimeMs now = sim_.Now();
  double tick = ArrivalTickMs(device_id);
  double mean = r.qps->QpsAt(now) * tick / kMsPerSecond;
  auto count = static_cast<double>(rng_.Poisson(mean));
  if (count > 0.0) {
    r.queue.push_back(Cohort{now, count});
    r.queued += count;
    r.monitor.RecordArrivals(now, count);

    // Overload shedding: bound the queue, penalizing shed requests.
    const GpuDevice& dev = device(device_id);
    double cap = kQueueCapBatches * static_cast<double>(std::max(dev.inference().batch_size, 1));
    while (r.queued > cap && !r.queue.empty()) {
      Cohort shed = r.queue.front();
      r.queue.pop_front();
      r.queued -= shed.count;
      double penalty = 10.0 * ServiceOnDevice(device_id).slo_ms;
      r.window_latencies.emplace_back(penalty, shed.count);
      r.monitor.RecordLatency(penalty, shed.count);
      if (telemetry_.enabled()) {
        telemetry_.metrics().GetCounter("serving.shed_requests").Increment(shed.count);
        MUDI_TRACE_INSTANT(&telemetry_, "serving", "shed", device_id, now,
                           telemetry::TraceArgs{telemetry::TraceArg::Num("count", shed.count)});
      }
    }
    TryStartBatch(device_id);
  }
}

void ClusterExperiment::TryStartBatch(int device_id) {
  Replica& r = replicas_[static_cast<size_t>(device_id)];
  if (r.busy || r.queue.empty()) {
    return;
  }
  GpuDevice& dev = cluster_.device(static_cast<size_t>(device_id));
  if (!dev.healthy()) {
    return;
  }
  int target_batch = std::max(dev.inference().batch_size, 1);
  TimeMs now = sim_.Now();
  TimeMs oldest_age = now - r.queue.front().arrival_ms;
  // The epsilon guards against a Zeno loop: when the timeout fires at
  // exactly arrival+timeout, floating-point error can leave oldest_age one
  // ulp short of the timeout, which would re-arm at the same instant.
  if (r.queued < static_cast<double>(target_batch) &&
      oldest_age + 1e-6 < WaitTimeoutMs(device_id)) {
    // Not enough for a full batch yet: arm the formation timeout.
    if (r.timeout_event == Simulator::kInvalidEventId) {
      TimeMs fire_at = r.queue.front().arrival_ms + WaitTimeoutMs(device_id);
      r.timeout_event = sim_.ScheduleAt(std::max(fire_at, now + 0.001), [this, device_id] {
        replicas_[static_cast<size_t>(device_id)].timeout_event = Simulator::kInvalidEventId;
        TryStartBatch(device_id);
      });
    }
    return;
  }
  if (r.timeout_event != Simulator::kInvalidEventId) {
    sim_.Cancel(r.timeout_event);
    r.timeout_event = Simulator::kInvalidEventId;
  }

  // Form the batch FIFO from cohorts.
  double want = std::min(r.queued, static_cast<double>(target_batch));
  int actual = std::max(1, static_cast<int>(std::lround(want)));
  std::vector<std::pair<TimeMs, double>> consumed;
  double remaining = static_cast<double>(actual);
  while (remaining > 1e-9 && !r.queue.empty()) {
    Cohort& front = r.queue.front();
    double take = std::min(front.count, remaining);
    consumed.emplace_back(front.arrival_ms, take);
    front.count -= take;
    r.queued -= take;
    remaining -= take;
    if (front.count <= 1e-9) {
      r.queue.pop_front();
    }
  }

  auto colocated = ActiveColocation(dev);
  double latency = oracle_
                       .ObserveInferenceBatchLatency(ServiceOnDevice(device_id), actual,
                                                     dev.inference().gpu_fraction, colocated,
                                                     rng_)
                       .total_ms() /
                   dev.EffectiveComputeScale();
  r.busy = true;
  r.busy_start = now;
  r.inflight = consumed;
  r.batch_event =
      sim_.ScheduleAfter(latency, [this, device_id, latency, consumed = std::move(consumed)] {
        FinishBatch(device_id, latency, consumed);
      });
}

void ClusterExperiment::FinishBatch(int device_id, double latency_ms,
                                    std::vector<std::pair<TimeMs, double>> consumed) {
  Replica& r = replicas_[static_cast<size_t>(device_id)];
  TimeMs now = sim_.Now();
  r.busy = false;
  r.batch_event = Simulator::kInvalidEventId;
  r.inflight.clear();
  r.busy_accum_ms += now - r.busy_start;
  double batch_requests = 0.0;
  for (const auto& [arrival, count] : consumed) {
    // End-to-end latency = queueing + batch service time.
    double e2e = now - arrival;
    r.window_latencies.emplace_back(e2e, count);
    r.monitor.RecordLatency(e2e, count);
    r.latency_weighted_sum += e2e * count;
    r.served += count;
    batch_requests += count;
  }
  if (telemetry_.enabled()) {
    auto& metrics = telemetry_.metrics();
    metrics.GetCounter("serving.batches").Increment();
    metrics.GetCounter("serving.requests").Increment(batch_requests);
    metrics.GetHistogram("serving.batch_latency_ms", telemetry::MetricsRegistry::DefaultLatencyBucketsMs())
        .Observe(latency_ms);
    MUDI_TRACE_COMPLETE(&telemetry_, "serving", "batch", device_id, r.busy_start,
                        now - r.busy_start,
                        telemetry::TraceArgs{
                            telemetry::TraceArg::Num("requests", batch_requests),
                            telemetry::TraceArg::Num("latency_ms", latency_ms)});
  }
  TryStartBatch(device_id);
}

void ClusterExperiment::CloseSloWindow(int device_id) {
  Replica& r = replicas_[static_cast<size_t>(device_id)];
  bool tainted = r.window_failure_tainted;
  r.window_failure_tainted = false;
  if (r.window_latencies.empty()) {
    return;  // idle window: nothing to judge
  }
  double p99 = WeightedP99(r.window_latencies);
  ++r.windows_total;
  bool violated = p99 > ServiceOnDevice(device_id).slo_ms;
  if (violated) {
    ++r.windows_violated;
    if (tainted) {
      ++r.windows_violated_failure;
    }
  }
  if (telemetry_.enabled()) {
    telemetry_.metrics().GetCounter("slo.windows_total").Increment();
    if (violated) {
      telemetry_.metrics().GetCounter("slo.windows_violated").Increment();
      if (tainted) {
        telemetry_.metrics().GetCounter("slo.windows_violated_failure").Increment();
      }
      MUDI_TRACE_INSTANT(&telemetry_, "slo", "window_violation", device_id, sim_.Now(),
                         telemetry::TraceArgs{
                             telemetry::TraceArg::Num("p99_ms", p99),
                             telemetry::TraceArg::Num("slo_ms", ServiceOnDevice(device_id).slo_ms),
                             telemetry::TraceArg::Num("failure_attributed", tainted ? 1.0 : 0.0)});
    }
  }
  r.window_latencies.clear();
}

// ---------------------------------------------------------------------------
// Fault path
// ---------------------------------------------------------------------------

std::string ClusterExperiment::DeviceStatusKey(int device_id) const {
  return "/devices/" + std::to_string(device_id) + "/status";
}

std::string ClusterExperiment::DeviceTaskKey(int device_id, int task_id) const {
  return "/devices/" + std::to_string(device_id) + "/tasks/" + std::to_string(task_id);
}

void ClusterExperiment::RouteCohort(int failed_device, const Cohort& cohort) {
  Replica& failed = replicas_[static_cast<size_t>(failed_device)];
  size_t service = device(failed_device).inference().service_index;
  std::vector<int> survivors;
  for (size_t d = 0; d < cluster_.num_devices(); ++d) {
    if (static_cast<int>(d) == failed_device) {
      continue;
    }
    const GpuDevice& dev = device(static_cast<int>(d));
    if (dev.healthy() && dev.has_inference() && dev.inference().service_index == service) {
      survivors.push_back(static_cast<int>(d));
    }
  }
  TimeMs now = sim_.Now();
  if (survivors.empty()) {
    // No surviving replica of this service: the requests are lost.
    failed_requests_ += cohort.count;
    if (telemetry_.enabled()) {
      telemetry_.metrics().GetCounter("fault.failed_requests").Increment(cohort.count);
    }
    return;
  }
  int target = survivors[failed.reroute_cursor % survivors.size()];
  ++failed.reroute_cursor;
  Replica& r = replicas_[static_cast<size_t>(target)];
  // The cohort keeps its original arrival time: failover detour latency
  // counts against the SLO, and the window is failure-attributed.
  r.queue.push_back(cohort);
  r.queued += cohort.count;
  r.monitor.RecordArrivals(now, cohort.count);
  r.window_failure_tainted = true;
  rerouted_requests_ += cohort.count;
  if (telemetry_.enabled()) {
    telemetry_.metrics().GetCounter("fault.rerouted_requests").Increment(cohort.count);
    MUDI_TRACE_INSTANT(&telemetry_, "fault", "reroute", target, now,
                       telemetry::TraceArgs{
                           telemetry::TraceArg::Num("from_device", failed_device),
                           telemetry::TraceArg::Num("count", cohort.count)});
  }
  TryStartBatch(target);
}

void ClusterExperiment::FailoverArrivalTick(int failed_device) {
  Replica& r = replicas_[static_cast<size_t>(failed_device)];
  TimeMs now = sim_.Now();
  double tick = ArrivalTickMs(failed_device);
  double mean = r.qps->QpsAt(now) * tick / kMsPerSecond;
  auto count = static_cast<double>(rng_.Poisson(mean));
  if (count > 0.0) {
    RouteCohort(failed_device, Cohort{now, count});
  }
}

std::vector<TrainingTaskInfo> ClusterExperiment::DisplaceTrainings(int device_id, TimeMs now) {
  GpuDevice& dev = cluster_.device(static_cast<size_t>(device_id));
  std::vector<int> task_ids;
  for (const auto& t : dev.trainings()) {
    task_ids.push_back(t.task_id);
  }
  std::vector<TrainingTaskInfo> displaced;
  for (int task_id : task_ids) {
    auto it = running_.find(task_id);
    MUDI_CHECK(it != running_.end());
    // Settle progress first so the checkpoint ledger covers every boundary
    // crossed before the failure instant.
    SyncTrainingProgress(device_id, task_id);
    RunningTask& running = it->second;
    if (running.completion_event != Simulator::kInvalidEventId) {
      sim_.Cancel(running.completion_event);
    }
    if (policy_->SupportsMemorySwap()) {
      MUDI_CHECK_OK(memory_manager_.Release(dev, task_id, now));
    }
    TrainingInstance instance = dev.RemoveTraining(task_id);
    // The key was Put at placement, so a failed Delete means the registry
    // and device state diverged — a bookkeeping bug, not a recoverable error.
    MUDI_CHECK(registry_.Delete(DeviceTaskKey(device_id, task_id)));
    // Checkpoint rollback: the task resumes from its last periodic
    // checkpoint, redoing the progress made since.
    double resume_work = std::max(running.work_at_checkpoint, instance.work_remaining_ms);
    double lost = std::max(0.0, resume_work - instance.work_remaining_ms);
    running_.erase(it);

    TaskRecord& record = task_records_[task_id];
    ++record.failures;
    record.work_lost_ms += lost;
    work_lost_ms_ += lost;
    ++trainings_displaced_;
    displaced_at_[task_id] = now;

    TrainingArrival requeue;
    requeue.task_id = task_id;
    requeue.arrival_ms = now;
    requeue.type_index = instance.type_index;
    requeue.work_full_gpu_ms = std::max(resume_work, 1.0);
    queue_.Push(PendingTask{requeue, /*priority=*/0});

    TrainingTaskInfo info;
    info.task_id = task_id;
    info.type_index = instance.type_index;
    info.spec = &ModelZoo::TrainingTasks()[instance.type_index];
    displaced.push_back(info);

    if (telemetry_.enabled()) {
      telemetry_.metrics().GetCounter("fault.trainings_displaced").Increment();
      MUDI_TRACE_INSTANT(&telemetry_, "fault", "training_displaced", device_id, now,
                         telemetry::TraceArgs{
                             telemetry::TraceArg::Num("task_id", task_id),
                             telemetry::TraceArg::Num("work_lost_ms", lost),
                             telemetry::TraceArg::Num("resume_work_ms", requeue.work_full_gpu_ms)});
    }
  }
  return displaced;
}

void ClusterExperiment::OnDeviceDown(int device_id, bool permanent, TimeMs now) {
  GpuDevice& dev = cluster_.device(static_cast<size_t>(device_id));
  MUDI_CHECK(dev.healthy());
  dev.SetHealthy(false);
  Replica& r = replicas_[static_cast<size_t>(device_id)];

  // Stop every per-device event: arrivals, SLO windows, batch formation
  // timeouts, the in-flight batch, and any shadow-instance reconfiguration.
  for (Simulator::EventId* ev :
       {&r.arrival_event, &r.slo_event, &r.timeout_event, &r.batch_event, &r.pending_event}) {
    if (*ev != Simulator::kInvalidEventId) {
      sim_.Cancel(*ev);
      *ev = Simulator::kInvalidEventId;
    }
  }
  r.pending_config.reset();

  // In-flight requests die with the device: worst-case penalty latency in
  // the (failure-attributed) SLO window, counted as failed.
  if (r.busy) {
    r.busy = false;
    r.busy_accum_ms += now - r.busy_start;
    double penalty = 10.0 * ServiceOnDevice(device_id).slo_ms;
    for (const auto& [arrival, count] : r.inflight) {
      r.window_latencies.emplace_back(penalty, count);
      failed_requests_ += count;
      if (telemetry_.enabled()) {
        telemetry_.metrics().GetCounter("fault.failed_requests").Increment(count);
      }
    }
    r.inflight.clear();
    r.window_failure_tainted = true;
  }
  // Queued cohorts fail over to surviving replicas of the same service.
  std::deque<Cohort> queued;
  queued.swap(r.queue);
  r.queued = 0.0;
  for (const auto& cohort : queued) {
    RouteCohort(device_id, cohort);
  }
  // Judge the partial window now; subsequent windows belong to the failover
  // replicas (this replica's window clock stops until recovery).
  if (!r.window_latencies.empty()) {
    r.window_failure_tainted = true;
  }
  CloseSloWindow(device_id);
  r.window_failure_tainted = false;

  // The service's request stream does not stop because a replica died:
  // future arrivals are generated on the dead replica's profile and re-routed.
  TimeMs tick = ArrivalTickMs(device_id);
  r.failover_event = sim_.SchedulePeriodic(now + tick, tick,
                                           [this, device_id] { FailoverArrivalTick(device_id); });

  std::vector<TrainingTaskInfo> displaced = DisplaceTrainings(device_id, now);

  registry_.Put(DeviceStatusKey(device_id), permanent ? "failed" : "down");

  if (telemetry_.enabled()) {
    telemetry_.metrics().GetCounter("fault.device_down").Increment();
  }
  MUDI_LOG(Info) << "device " << device_id << (permanent ? " permanently" : "") << " failed at t="
                 << now / kMsPerSecond << "s: " << displaced.size() << " training(s) displaced";

  // A crashed scheduler observes nothing: the failure shows up in its
  // recovery scan instead, and OnControlPlaneRestart drops stale caches.
  if (scheduler_up_) {
    DecisionScope scope(options_.recorder, cluster_, replay::HookKind::kOnDeviceFailed, now,
                        DecisionScope::Snapshot::kDevice, device_id);
    if (scope.recorder() != nullptr) {
      for (const auto& t : displaced) {
        scope.recorder()->AddDisplaced(t.task_id, static_cast<uint32_t>(t.type_index));
      }
    }
    policy_->OnDeviceFailed(*this, device_id, displaced);
  }
  TryDispatchQueue();
}

void ClusterExperiment::OnDeviceUp(int device_id, TimeMs now) {
  GpuDevice& dev = cluster_.device(static_cast<size_t>(device_id));
  MUDI_CHECK(!dev.healthy());
  dev.SetHealthy(true);
  Replica& r = replicas_[static_cast<size_t>(device_id)];

  // The replica restarts from the initial serving configuration (a rebooted
  // server does not remember its tuned state) with a fresh monitor.
  InferenceInstance& inf = dev.mutable_inference();
  inf.batch_size = kInitialBatch;
  inf.gpu_fraction = kInitialInferenceFraction;
  inf.mem_required_mb = InferenceMemoryMb(ServiceOnDevice(device_id), kInitialBatch);
  r.monitor = QpsMonitor();
  r.monitor.SetTelemetry(&telemetry_, device_id);
  r.window_latencies.clear();
  r.window_failure_tainted = false;

  if (r.failover_event != Simulator::kInvalidEventId) {
    sim_.Cancel(r.failover_event);
    r.failover_event = Simulator::kInvalidEventId;
  }
  TimeMs tick = ArrivalTickMs(device_id);
  r.arrival_event =
      sim_.SchedulePeriodic(now + tick, tick, [this, device_id] { ArrivalTick(device_id); });
  r.slo_event = sim_.SchedulePeriodic(now + options_.slo_window_ms, options_.slo_window_ms,
                                      [this, device_id] { CloseSloWindow(device_id); });

  registry_.Put(DeviceStatusKey(device_id), "up");
  if (telemetry_.enabled()) {
    telemetry_.metrics().GetCounter("fault.device_up").Increment();
  }
  MUDI_LOG(Info) << "device " << device_id << " recovered at t=" << now / kMsPerSecond << "s";

  if (scheduler_up_) {
    DecisionScope scope(options_.recorder, cluster_, replay::HookKind::kOnDeviceRecovered, now,
                        DecisionScope::Snapshot::kDevice, device_id);
    policy_->OnDeviceRecovered(*this, device_id);
  }
  TryDispatchQueue();
}

void ClusterExperiment::OnStragglerFactor(int device_id, double factor, TimeMs /*now*/) {
  GpuDevice& dev = cluster_.device(static_cast<size_t>(device_id));
  dev.SetSlowdown(factor);
  // Training progress is settled at the old speed inside UpdateTrainingSpeeds
  // (SyncTrainingProgress runs before the speed is recomputed), so the
  // inflection is exact. In-flight inference batches keep their pre-straggler
  // latency; subsequent batches observe the slowdown.
  UpdateTrainingSpeeds(device_id);
}

void ClusterExperiment::OnFeedbackLost(int device_id, TimeMs now) {
  replicas_[static_cast<size_t>(device_id)].monitor.SetFeedbackLost(true, now);
}

void ClusterExperiment::OnFeedbackRestored(int device_id, TimeMs now) {
  replicas_[static_cast<size_t>(device_id)].monitor.SetFeedbackLost(false, now);
}

// ---------------------------------------------------------------------------
// Control plane (DESIGN.md §13)
// ---------------------------------------------------------------------------

std::string ClusterExperiment::SchedConfigKey(int device_id) const {
  // The "/inference" terminator keeps the per-device watch prefix exact:
  // without it, the device-1 watch would also match devices 10, 11, ...
  return "/sched/config/" + std::to_string(device_id) + "/inference";
}

void ClusterExperiment::StartControlPlane() {
  const ControlFaultPlan& plan = options_.ctrl_fault_plan;
  MUDI_CHECK(!plan.empty());
  MUDI_CHECK_OK(plan.Validate());
  ctrl_enabled_ = true;

  // The registry becomes a real (degradable) control-plane dependency.
  // Delete events are forced on so recovery can observe deregistration
  // instead of polling for absence.
  registry_.EnableDeleteEvents(true);
  Rng ctrl_rng = rng_.Fork(0x6374726Cull);  // "ctrl"
  registry_.EnableDegradedMode(&sim_, plan.degrade, ctrl_rng.Fork(1));
  recovery_retrier_ = std::make_unique<Retrier>(&sim_, options_.ctrl_retry, ctrl_rng.Fork(2));
  watch_retrier_ = std::make_unique<Retrier>(&sim_, options_.ctrl_retry, ctrl_rng.Fork(3));

  config_watches_.assign(cluster_.num_devices(), 0);
  config_applied_rev_.assign(cluster_.num_devices(), 0);
  config_applied_seq_.assign(cluster_.num_devices(), 0);
  for (size_t d = 0; d < cluster_.num_devices(); ++d) {
    RegisterConfigWatch(static_cast<int>(d));
  }

  ctrl_injector_ = std::make_unique<ControlFaultInjector>(&sim_, this, &telemetry_);
  MUDI_CHECK_OK(ctrl_injector_->Arm(plan));

  // Coordinator heartbeat: the epoch key tells the recovery scan how fresh
  // the registry's view of the scheduler is. ("/sched/epoch" does not prefix
  // any per-device config watch, so heartbeats draw nothing from the
  // watchers' delivery streams.)
  if (options_.ctrl_checkpoint_period_ms > 0.0) {
    sim_.SchedulePeriodic(options_.ctrl_checkpoint_period_ms, options_.ctrl_checkpoint_period_ms,
                          [this] {
                            if (!scheduler_up_) {
                              return;  // a crashed scheduler stops heartbeating
                            }
                            ++ckpt_epoch_;
                            registry_.Put("/sched/epoch", std::to_string(ckpt_epoch_));
                          });
  }
}

void ClusterExperiment::RegisterConfigWatch(int device_id) {
  config_watches_[static_cast<size_t>(device_id)] = registry_.Watch(
      SchedConfigKey(device_id),
      [this, device_id](const std::string& /*key*/, const std::string& value, uint64_t revision) {
        OnConfigDelivered(device_id, value, revision);
      });
}

void ClusterExperiment::OnConfigDelivered(int device_id, const std::string& value,
                                          uint64_t revision) {
  size_t d = static_cast<size_t>(device_id);
  if (revision <= config_applied_rev_[d]) {
    return;  // out-of-order, duplicate, or stale-snapshot delivery: never regress
  }
  config_applied_rev_[d] = revision;
  if (value.empty()) {
    return;  // tombstone: the config key was deleted, nothing to apply
  }
  char* sep = nullptr;
  uint64_t seq = std::strtoull(value.c_str(), &sep, 10);
  MUDI_CHECK(sep != nullptr && *sep == '|');
  char* sep2 = nullptr;
  long batch = std::strtol(sep + 1, &sep2, 10);
  MUDI_CHECK(sep2 != nullptr && *sep2 == '|');
  double gpu_fraction = std::strtod(sep2 + 1, nullptr);
  if (seq <= config_applied_seq_[d]) {
    return;  // this publication already reached the device (e.g. via a
             // catch-up read racing its own delayed watch delivery)
  }
  config_applied_seq_[d] = seq;
  ++configs_applied_;
  if (telemetry_.enabled()) {
    MUDI_TRACE_INSTANT(&telemetry_, "ctrl", "config_applied", device_id, sim_.Now(),
                       telemetry::TraceArgs{
                           telemetry::TraceArg::Num("batch", static_cast<double>(batch)),
                           telemetry::TraceArg::Num("fraction", gpu_fraction),
                           telemetry::TraceArg::Num("revision", static_cast<double>(revision))});
  }
  ApplyInferenceConfigDirect(device_id, static_cast<int>(batch), gpu_fraction);
}

Status ClusterExperiment::CatchUpConfig(int device_id) {
  uint64_t rev = 0;
  StatusOr<std::string> value = registry_.CtrlGet(SchedConfigKey(device_id), &rev);
  if (!value.ok()) {
    if (value.status().code() == StatusCode::kNotFound) {
      // Nothing published yet (or a stale snapshot predating the first
      // publish) — nothing to catch up on, not a retriable failure.
      return Status::Ok();
    }
    return value.status();
  }
  // The delivery guard in OnConfigDelivered makes catch-up idempotent and
  // immune to stale snapshots regressing a newer applied config.
  OnConfigDelivered(device_id, *value, rev);
  return Status::Ok();
}

void ClusterExperiment::OnKvPartitionStart(TimeMs /*now*/) { registry_.SetPartitioned(true); }

void ClusterExperiment::OnKvPartitionEnd(TimeMs /*now*/) {
  registry_.SetPartitioned(false);
  // Updates inside the window were lost, not buffered: catch every device
  // agent up through the control read path (deterministic device order).
  // The partition just healed, so the only possible miss is a stale
  // snapshot, which CatchUpConfig treats as "nothing to apply".
  for (size_t d = 0; d < cluster_.num_devices(); ++d) {
    MUDI_CHECK_OK(CatchUpConfig(static_cast<int>(d)));
  }
}

void ClusterExperiment::OnWatchesLost(TimeMs now) {
  for (size_t d = 0; d < cluster_.num_devices(); ++d) {
    if (config_watches_[d] != 0) {
      (void)registry_.Unwatch(config_watches_[d]);
      config_watches_[d] = 0;
    }
  }
  MUDI_LOG(Info) << "control plane lost its watches at t=" << now / kMsPerSecond << "s";
  // Re-establish through the sanctioned retry loop: a concurrent partition
  // makes the catch-up reads fail Unavailable until the window ends.
  watch_retrier_->Start(
      0.0,
      [this]() -> Status {
        for (size_t d = 0; d < cluster_.num_devices(); ++d) {
          if (config_watches_[d] == 0) {
            RegisterConfigWatch(static_cast<int>(d));
          }
          MUDI_RETURN_IF_ERROR(CatchUpConfig(static_cast<int>(d)));
        }
        return Status::Ok();
      },
      [this](const Status& status, int attempts) {
        if (!status.ok()) {
          MUDI_LOG(Warning) << "watch re-establishment abandoned after " << attempts
                            << " attempt(s): " << status.ToString();
        }
      });
}

void ClusterExperiment::OnSchedulerCrash(TimeMs restart_delay_ms, TimeMs now) {
  if (scheduler_up_) {
    scheduler_up_ = false;
    scheduler_crashed_at_ = now;
    MUDI_LOG(Info) << "scheduler crashed at t=" << now / kMsPerSecond << "s, restart in "
                   << restart_delay_ms / kMsPerSecond << "s";
  } else {
    MUDI_LOG(Info) << "scheduler crashed again (mid-recovery) at t=" << now / kMsPerSecond << "s";
  }
  // Start() cancels any in-flight recovery loop: a crash during recovery
  // restarts recovery from scratch while downtime keeps accruing from the
  // first crash instant.
  recovery_retrier_->Start(
      restart_delay_ms, [this]() -> Status { return AttemptSchedulerRecovery(); },
      [this](const Status& status, int attempts) {
        if (status.ok()) {
          FinishSchedulerRecovery();
        } else {
          MUDI_LOG(Warning) << "scheduler recovery abandoned after " << attempts
                            << " attempt(s): " << status.ToString();
        }
      });
}

Status ClusterExperiment::AttemptSchedulerRecovery() {
  // Reconstruct the scheduler's policy-visible view from a registry scan.
  // Either list failing (partition) aborts the attempt; the Retrier backs
  // off and re-reads.
  StatusOr<std::vector<std::pair<std::string, std::string>>> device_rows =
      registry_.CtrlList("/devices/");
  if (!device_rows.ok()) {
    return device_rows.status();
  }
  StatusOr<std::vector<std::pair<std::string, std::string>>> sched_rows =
      registry_.CtrlList("/sched/");
  if (!sched_rows.ok()) {
    return sched_rows.status();
  }
  // Cross-check the scan against live (ground-truth) cluster state. Rows a
  // stale snapshot or a pre-crash write left behind are counted, not
  // trusted: the policy re-derives everything from probes after
  // OnControlPlaneRestart anyway.
  size_t mismatches = 0;
  size_t scanned_tasks = 0;
  for (size_t d = 0; d < cluster_.num_devices(); ++d) {
    const std::string status_key = DeviceStatusKey(static_cast<int>(d));
    std::string scanned;
    for (const auto& [key, value] : *device_rows) {
      if (key == status_key) {
        scanned = value;
        break;
      }
    }
    if ((scanned == "up") != cluster_.device(d).healthy()) {
      ++mismatches;
    }
  }
  for (const auto& [key, value] : *device_rows) {
    if (key.find("/tasks/") != std::string::npos) {
      ++scanned_tasks;
    }
  }
  if (scanned_tasks != running_.size()) {
    mismatches += scanned_tasks > running_.size() ? scanned_tasks - running_.size()
                                                  : running_.size() - scanned_tasks;
  }
  for (const auto& [key, value] : *sched_rows) {
    if (key == "/sched/epoch" && value != std::to_string(ckpt_epoch_)) {
      ++mismatches;  // the heartbeat row lags the coordinator's last beat
    }
  }
  stale_scan_entries_ += mismatches;
  return Status::Ok();
}

void ClusterExperiment::FinishSchedulerRecovery() {
  TimeMs now = sim_.Now();
  double recovery_ms = now - scheduler_crashed_at_;
  scheduler_up_ = true;
  ++scheduler_recoveries_;
  recovery_ms_sum_ += recovery_ms;
  MUDI_LOG(Info) << "scheduler recovered at t=" << now / kMsPerSecond << "s ("
                 << recovery_ms / kMsPerSecond << "s outage, " << stale_scan_entries_
                 << " stale scan entries so far)";
  if (telemetry_.enabled()) {
    telemetry_.metrics().GetCounter("ctrl.scheduler_recoveries").Increment();
    MUDI_TRACE_INSTANT(&telemetry_, "ctrl", "scheduler_recovered",
                       static_cast<int>(cluster_.num_devices()), now,
                       telemetry::TraceArgs{telemetry::TraceArg::Num("recovery_ms", recovery_ms)});
  }
  // The reconstructed view may be stale: drop policy caches and force a full
  // retune sweep at the next MonitorTick (stale-trigger every replica).
  {
    DecisionScope scope(options_.recorder, cluster_, replay::HookKind::kOnControlPlaneRestart,
                        now, DecisionScope::Snapshot::kNone);
    policy_->OnControlPlaneRestart(*this);
  }
  for (auto& r : replicas_) {
    r.last_trigger_ms = now - options_.periodic_retune_ms;
  }
  TryDispatchQueue();
}

// ---------------------------------------------------------------------------
// Training path
// ---------------------------------------------------------------------------

void ClusterExperiment::OnTrainingArrival(const TrainingArrival& arrival) {
  TaskRecord record;
  record.task_id = arrival.task_id;
  record.type_index = arrival.type_index;
  record.arrival_ms = arrival.arrival_ms;
  task_records_[arrival.task_id] = record;
  if (telemetry_.enabled()) {
    telemetry_.metrics().GetCounter("training.arrivals").Increment();
    MUDI_TRACE_INSTANT(&telemetry_, "training", "task_arrival",
                       static_cast<int>(cluster_.num_devices()), arrival.arrival_ms,
                       telemetry::TraceArgs{
                           telemetry::TraceArg::Num("task_id", arrival.task_id),
                           telemetry::TraceArg::Str(
                               "type", ModelZoo::TrainingTasks()[arrival.type_index].name)});
  }
  queue_.Push(PendingTask{arrival, /*priority=*/0});
  TryDispatchQueue();
}

void ClusterExperiment::TryDispatchQueue() {
  if (!scheduler_up_) {
    return;  // placements need the scheduler; tasks wait out the crash
  }
  while (!queue_.empty()) {
    const PendingTask* next = queue_.Peek();
    MUDI_CHECK(next != nullptr);
    TrainingTaskInfo info;
    info.task_id = next->arrival.task_id;
    info.type_index = next->arrival.type_index;
    info.spec = &ModelZoo::TrainingTasks()[next->arrival.type_index];
    std::optional<int> choice;
    {
      DecisionScope scope(options_.recorder, cluster_, replay::HookKind::kSelectDevice,
                          sim_.Now(), DecisionScope::Snapshot::kAll, /*device_id=*/-1,
                          info.task_id, static_cast<int>(info.type_index));
      perf::PerfRegion region(perf_select_stat_);
      choice = policy_->SelectDevice(*this, info);
      if (scope.recorder() != nullptr) {
        scope.recorder()->SetChosenDevice(choice.value_or(-1));
      }
    }
    if (!choice.has_value()) {
      return;  // no capacity: stay queued
    }
    if (!device(*choice).healthy()) {
      MUDI_LOG(Warning) << "policy selected unhealthy device " << *choice << " for task "
                     << info.task_id << "; leaving it queued";
      return;
    }
    TrainingArrival arrival = queue_.Pop()->arrival;
    PlaceTask(arrival, *choice);
  }
}

void ClusterExperiment::PlaceTask(const TrainingArrival& arrival, int device_id) {
  GpuDevice& dev = cluster_.device(static_cast<size_t>(device_id));
  const TrainingTaskSpec& spec = ModelZoo::TrainingTasks()[arrival.type_index];

  TrainingInstance instance;
  instance.task_id = arrival.task_id;
  instance.type_index = arrival.type_index;
  instance.gpu_fraction = 0.1;  // provisional until the policy configures
  instance.work_remaining_ms = arrival.work_full_gpu_ms;
  instance.mem_required_mb = TrainingMemoryMb(spec);
  instance.admitted_at_ms = sim_.Now();
  dev.AddTraining(instance);
  RebalanceMemory(device_id);

  RunningTask running;
  running.device_id = device_id;
  running.last_sync_ms = sim_.Now();
  running.next_checkpoint_ms = sim_.Now() + options_.checkpoint_period_ms;
  running.work_at_checkpoint = arrival.work_full_gpu_ms;
  running_[arrival.task_id] = running;

  TaskRecord& record = task_records_[arrival.task_id];
  if (record.start_ms < 0.0) {
    record.start_ms = sim_.Now();  // keep the first placement's queue wait
  }
  record.device_id = device_id;
  registry_.Put(DeviceTaskKey(device_id, arrival.task_id), spec.name);

  // Re-placement of a fault-displaced task: time from displacement to the new
  // placement is the recovery latency reported in FaultMetrics.
  auto displaced_it = displaced_at_.find(arrival.task_id);
  if (displaced_it != displaced_at_.end()) {
    replacement_time_sum_ms_ += sim_.Now() - displaced_it->second;
    ++trainings_replaced_;
    displaced_at_.erase(displaced_it);
    if (telemetry_.enabled()) {
      telemetry_.metrics().GetCounter("fault.trainings_replaced").Increment();
      MUDI_TRACE_INSTANT(&telemetry_, "fault", "training_replaced", device_id, sim_.Now(),
                         telemetry::TraceArgs{
                             telemetry::TraceArg::Num("task_id", arrival.task_id)});
    }
  }

  if (telemetry_.enabled()) {
    telemetry_.metrics().GetCounter("training.placements").Increment();
    telemetry_.metrics()
        .GetHistogram("training.queue_wait_ms", telemetry::MetricsRegistry::DefaultLatencyBucketsMs())
        .Observe(record.start_ms - arrival.arrival_ms);
    MUDI_TRACE_INSTANT(&telemetry_, "placement", "place", device_id, record.start_ms,
                       telemetry::TraceArgs{
                           telemetry::TraceArg::Num("task_id", arrival.task_id),
                           telemetry::TraceArg::Str("type", spec.name),
                           telemetry::TraceArg::Num("queue_wait_ms",
                                                    record.start_ms - arrival.arrival_ms)});
  }

  TrainingTaskInfo info;
  info.task_id = arrival.task_id;
  info.type_index = arrival.type_index;
  info.spec = &spec;
  {
    DecisionScope scope(options_.recorder, cluster_, replay::HookKind::kOnTrainingPlaced,
                        sim_.Now(), DecisionScope::Snapshot::kDevice, device_id, info.task_id,
                        static_cast<int>(info.type_index));
    perf::PerfRegion region(perf_place_stat_);
    policy_->OnTrainingPlaced(*this, device_id, info);
  }
  UpdateTrainingSpeeds(device_id);
}

void ClusterExperiment::SyncTrainingProgress(int device_id, int task_id) {
  auto it = running_.find(task_id);
  if (it == running_.end()) {
    return;
  }
  RunningTask& running = it->second;
  GpuDevice& dev = cluster_.device(static_cast<size_t>(device_id));
  TrainingInstance* instance = dev.FindTraining(task_id);
  MUDI_CHECK(instance != nullptr);
  TimeMs now = sim_.Now();
  // Snapshot periodic checkpoints crossed since the last sync: speed is
  // constant between syncs, so the work level at each boundary is analytic.
  while (running.next_checkpoint_ms <= now) {
    double at_cp = instance->work_remaining_ms;
    if (running.speed > 0.0) {
      at_cp = std::max(0.0, instance->work_remaining_ms -
                                running.speed * (running.next_checkpoint_ms - running.last_sync_ms));
    }
    running.work_at_checkpoint = at_cp;
    running.next_checkpoint_ms += options_.checkpoint_period_ms;
  }
  double elapsed = now - running.last_sync_ms;
  if (elapsed > 0.0 && running.speed > 0.0) {
    instance->work_remaining_ms =
        std::max(0.0, instance->work_remaining_ms - running.speed * elapsed);
  }
  running.last_sync_ms = now;
}

void ClusterExperiment::UpdateTrainingSpeeds(int device_id) {
  GpuDevice& dev = cluster_.device(static_cast<size_t>(device_id));
  const auto& tasks = ModelZoo::TrainingTasks();
  InferenceLoad load = CurrentInferenceLoad(device_id);

  for (auto& instance : dev.mutable_trainings()) {
    auto it = running_.find(instance.task_id);
    if (it == running_.end()) {
      continue;
    }
    RunningTask& running = it->second;
    SyncTrainingProgress(device_id, instance.task_id);

    if (running.completion_event != Simulator::kInvalidEventId) {
      sim_.Cancel(running.completion_event);
      running.completion_event = Simulator::kInvalidEventId;
    }
    if (instance.paused || instance.gpu_fraction <= 0.0) {
      running.speed = 0.0;
      continue;
    }
    const TrainingTaskSpec& spec = tasks[instance.type_index];
    std::vector<ColocatedTraining> others;
    for (const auto& other : dev.trainings()) {
      if (!other.paused && other.task_id != instance.task_id) {
        others.push_back(ColocatedTraining{&tasks[other.type_index], other.gpu_fraction});
      }
    }
    double iter = oracle_.TrainingIterationMs(spec, std::clamp(instance.gpu_fraction, 0.02, 1.0),
                                              load, others) *
                  MemoryManager::SwapSlowdownFactor(instance) / dev.EffectiveComputeScale();
    running.speed = spec.iter_ms_full / iter;
    MUDI_CHECK_GT(running.speed, 0.0);
    TimeMs eta = instance.work_remaining_ms / running.speed;
    int task_id = instance.task_id;
    running.completion_event = sim_.ScheduleAfter(
        std::max(eta, 0.01), [this, device_id, task_id] { OnTrainingComplete(device_id, task_id); });
  }
}

void ClusterExperiment::OnTrainingComplete(int device_id, int task_id) {
  SyncTrainingProgress(device_id, task_id);
  GpuDevice& dev = cluster_.device(static_cast<size_t>(device_id));
  if (policy_->SupportsMemorySwap()) {
    MUDI_CHECK_OK(memory_manager_.Release(dev, task_id, sim_.Now()));
  }
  dev.RemoveTraining(task_id);
  running_.erase(task_id);
  // See the displacement path: this key must exist for any running task.
  MUDI_CHECK(registry_.Delete(DeviceTaskKey(device_id, task_id)));

  TaskRecord& record = task_records_[task_id];
  record.completion_ms = sim_.Now();
  last_completion_ms_ = std::max(last_completion_ms_, record.completion_ms);
  MUDI_CHECK_GT(tasks_remaining_, 0u);
  --tasks_remaining_;

  if (telemetry_.enabled()) {
    telemetry_.metrics().GetCounter("training.completions").Increment();
    MUDI_TRACE_COMPLETE(&telemetry_, "training",
                        ModelZoo::TrainingTasks()[record.type_index].name, device_id,
                        record.start_ms, record.completion_ms - record.start_ms,
                        telemetry::TraceArgs{telemetry::TraceArg::Num("task_id", task_id)});
  }

  RebalanceMemory(device_id);
  {
    DecisionScope scope(options_.recorder, cluster_, replay::HookKind::kOnTrainingCompleted,
                        sim_.Now(), DecisionScope::Snapshot::kDevice, device_id, task_id,
                        static_cast<int>(record.type_index));
    policy_->OnTrainingCompleted(*this, device_id, task_id);
  }
  UpdateTrainingSpeeds(device_id);
  TryDispatchQueue();
}

// ---------------------------------------------------------------------------
// Periodic bookkeeping
// ---------------------------------------------------------------------------

void ClusterExperiment::MonitorTick() {
  if (!scheduler_up_) {
    return;  // no tuning decisions while the scheduler is down; the replicas
             // keep serving on their last-applied configurations
  }
  for (size_t d = 0; d < cluster_.num_devices(); ++d) {
    if (!cluster_.device(d).healthy()) {
      continue;  // no monitor feedback and nothing to retune while down
    }
    Replica& r = replicas_[d];
    bool qps_trigger = r.monitor.QpsChangedBeyondThreshold(sim_.Now());
    bool slo_risk = r.monitor.has_latency_samples() &&
                    r.monitor.P99LatencyMs() > 0.9 * ServiceOnDevice(static_cast<int>(d)).slo_ms;
    // Devices with preemptively paused training (§5.3.2) are re-evaluated on
    // every tick: "until suitable resources become available" requires an
    // active check, not just a QPS-change edge trigger.
    bool has_paused = false;
    for (const auto& t : cluster_.device(d).trainings()) {
      has_paused |= t.paused;
    }
    bool stale = sim_.Now() - r.last_trigger_ms >= options_.periodic_retune_ms;
    if (qps_trigger || slo_risk || has_paused || stale) {
      r.last_trigger_ms = sim_.Now();
      {
        DecisionScope scope(options_.recorder, cluster_, replay::HookKind::kOnQpsChange,
                            sim_.Now(), DecisionScope::Snapshot::kDevice, static_cast<int>(d));
        perf::PerfRegion region(perf_qps_stat_);
        policy_->OnQpsChange(*this, static_cast<int>(d));
      }
      r.monitor.AckQpsChange(sim_.Now());
      RebalanceMemory(static_cast<int>(d));
      UpdateTrainingSpeeds(static_cast<int>(d));
    }
  }
  // Retry queued tasks: capacity may have been unlocked by retuning.
  TryDispatchQueue();
}

void ClusterExperiment::UtilSampleTick() {
  TimeMs now = sim_.Now();
  double dt = now - last_util_sample_ms_;
  if (dt <= 0.0) {
    return;
  }
  last_util_sample_ms_ = now;

  double sm_sum = 0.0;
  double mem_sum = 0.0;
  for (size_t d = 0; d < cluster_.num_devices(); ++d) {
    GpuDevice& dev = cluster_.device(d);
    Replica& r = replicas_[d];
    double busy_ms = r.busy_accum_ms;
    if (r.busy) {
      busy_ms += now - std::max(r.busy_start, now - dt);
    }
    r.busy_accum_ms = 0.0;
    double busy_frac = std::clamp(busy_ms / dt, 0.0, 1.0);
    double sm = busy_frac * dev.inference().gpu_fraction;
    for (const auto& t : dev.trainings()) {
      if (!t.paused) {
        const TrainingTaskSpec& spec = ModelZoo::TrainingTasks()[t.type_index];
        sm += 0.95 * std::min(t.gpu_fraction, spec.saturation_gpu);
      }
    }
    sm = std::min(sm, 1.0);
    double mem = dev.InstantMemUtil();
    if (!dev.healthy()) {
      sm = 0.0;  // a down device contributes zero utilization
      mem = 0.0;
    }
    dev.AccumulateUsage(dt, sm, mem);
    sm_sum += sm;
    mem_sum += mem;

    // Per-device counter tracks carrying the exact samples fed to
    // AccumulateUsage: trace_summary recomputes the same time-weighted
    // average, so its per-device utilization agrees with exp/metrics.
    MUDI_TRACE_COUNTER(&telemetry_, "sm_util", static_cast<int>(d), now, sm);
    MUDI_TRACE_COUNTER(&telemetry_, "mem_util", static_cast<int>(d), now, mem);

    // Swap-time accounting (Tab. 4).
    bool any_swapped = false;
    for (const auto& t : dev.trainings()) {
      if (t.mem_swapped_mb > 1.0) {
        any_swapped = true;
        break;
      }
    }
    if (any_swapped) {
      r.swapped_time_ms += dt;
    }
    r.observed_time_ms += dt;
  }
  double n = static_cast<double>(cluster_.num_devices());
  if (telemetry_.enabled()) {
    auto& metrics = telemetry_.metrics();
    metrics.GetGauge("cluster.sm_util").Set(sm_sum / n);
    metrics.GetGauge("cluster.mem_util").Set(mem_sum / n);
    metrics.GetGauge("cluster.active_trainings").Set(static_cast<double>(running_.size()));
    metrics
        .GetHistogram("queue.depth_samples",
                      {0.5, 1.5, 2.5, 4.5, 8.5, 16.5, 32.5, 64.5, 128.5})
        .Observe(static_cast<double>(queue_.size()));
    metrics.RecordSnapshot(now);
  }
  if (options_.record_util_series) {
    util_series_.push_back(UtilSample{now, sm_sum / n, mem_sum / n});
  }
  if (options_.trace_device_id >= 0 &&
      options_.trace_device_id < static_cast<int>(cluster_.num_devices())) {
    int d = options_.trace_device_id;
    const GpuDevice& dev = device(d);
    double swapped = 0.0;
    for (const auto& t : dev.trainings()) {
      swapped += t.mem_swapped_mb;
    }
    device_series_.push_back(DeviceSeriesSample{now, MeasuredQps(d), dev.inference().batch_size,
                                                dev.inference().gpu_fraction, swapped,
                                                dev.MemoryResidentMb()});
  }
}

// ---------------------------------------------------------------------------
// Run
// ---------------------------------------------------------------------------

ExperimentResult ClusterExperiment::Run() {
  perf::PerfRegion run_region(perf(), "exp.run");
  if (options_.recorder != nullptr) {
    // Static per-device facts, once, so decision snapshots stay compact.
    std::vector<replay::DeviceTableEntry> table;
    table.reserve(cluster_.num_devices());
    for (const GpuDevice& dev : cluster_.devices()) {
      replay::DeviceTableEntry entry;
      entry.device_id = dev.id();
      entry.service_index = static_cast<uint32_t>(dev.inference().service_index);
      entry.memory_mb = dev.memory_mb();
      entry.compute_scale = dev.compute_scale();
      table.push_back(entry);
    }
    options_.recorder->RecordDeviceTable(table);
  }
  {
    DecisionScope scope(options_.recorder, cluster_, replay::HookKind::kInitialize, sim_.Now(),
                        DecisionScope::Snapshot::kAll);
    perf::PerfRegion region(perf(), "policy.initialize");
    policy_->Initialize(*this);
  }

  // Arm the control-plane fault domain (no-op for an empty plan: zero events,
  // zero registry traffic, byte-identical results — ctrl_fault_test pins it).
  if (!options_.ctrl_fault_plan.empty()) {
    StartControlPlane();
  }

  // Arm the fault schedule (no-op for an empty plan: zero events, zero RNG
  // perturbation, byte-identical results to a build without fault machinery).
  if (!options_.fault_plan.empty()) {
    Status armed = fault_injector_->Arm(options_.fault_plan);
    MUDI_CHECK(armed.ok());
  }

  // Training arrivals.
  std::vector<TrainingArrival> trace = options_.trace_override;
  if (trace.empty() && options_.trace.num_tasks > 0) {
    trace = GenerateTrainingTrace(options_.trace);
  }
  tasks_remaining_ = trace.size();
  first_arrival_ms_ = trace.empty() ? 0.0 : trace.front().arrival_ms;
  for (const auto& arrival : trace) {
    sim_.ScheduleAt(arrival.arrival_ms, [this, arrival] { OnTrainingArrival(arrival); });
  }

  // Per-device arrival ticks (event ids kept so a device failure cancels them).
  for (size_t d = 0; d < cluster_.num_devices(); ++d) {
    int device_id = static_cast<int>(d);
    double tick = ArrivalTickMs(device_id);
    Replica& r = replicas_[d];
    r.arrival_event =
        sim_.SchedulePeriodic(tick, tick, [this, device_id] { ArrivalTick(device_id); });
    r.slo_event = sim_.SchedulePeriodic(options_.slo_window_ms, options_.slo_window_ms,
                                        [this, device_id] { CloseSloWindow(device_id); });
  }
  sim_.SchedulePeriodic(options_.monitor_period_ms, options_.monitor_period_ms,
                        [this] { MonitorTick(); });
  sim_.SchedulePeriodic(options_.util_sample_ms, options_.util_sample_ms,
                        [this] { UtilSampleTick(); });

  if (options_.horizon_ms > 0.0) {
    sim_.RunUntil(options_.horizon_ms);
  } else {
    // Run until all training tasks complete (serving events are periodic and
    // never drain, so step until the countdown hits zero).
    uint64_t steps = 0;
    while (tasks_remaining_ > 0 && sim_.Now() < options_.max_sim_ms) {
      MUDI_CHECK(sim_.Step());
      if (++steps % 5000000 == 0) {
        MUDI_LOG(Debug) << "sim t=" << sim_.Now() / kMsPerSecond << "s, steps=" << steps
                        << ", remaining=" << tasks_remaining_ << ", queued=" << queue_.size()
                        << ", pending_events=" << sim_.pending_events();
      }
    }
    sim_.RunUntil(sim_.Now() + options_.drain_ms);
  }

  // Close any half-open SLO windows.
  for (size_t d = 0; d < cluster_.num_devices(); ++d) {
    CloseSloWindow(static_cast<int>(d));
  }

  // Aggregate results.
  ExperimentResult result;
  result.policy_name = policy_->name();
  for (size_t d = 0; d < cluster_.num_devices(); ++d) {
    const Replica& r = replicas_[d];
    const std::string& name = ServiceOnDevice(static_cast<int>(d)).name;
    ServiceMetrics& m = result.per_service[name];
    m.service_name = name;
    m.windows_total += r.windows_total;
    m.windows_violated += r.windows_violated;
    m.windows_violated_failure += r.windows_violated_failure;
    m.mean_latency_ms += r.latency_weighted_sum;
    m.served_requests += r.served;
  }
  for (auto& [name, m] : result.per_service) {
    if (m.served_requests > 0.0) {
      m.mean_latency_ms /= m.served_requests;
    }
  }
  for (const auto& [id, record] : task_records_) {
    result.tasks.push_back(record);
  }
  result.makespan_ms = last_completion_ms_ - first_arrival_ms_;

  double sm_sum = 0.0;
  double mem_sum = 0.0;
  std::map<std::string, std::pair<double, double>> swap_acc;  // (swapped, observed)
  for (size_t d = 0; d < cluster_.num_devices(); ++d) {
    const GpuDevice& dev = device(static_cast<int>(d));
    sm_sum += dev.AverageSmUtil();
    mem_sum += dev.AverageMemUtil();
    const Replica& r = replicas_[d];
    auto& acc = swap_acc[ServiceOnDevice(static_cast<int>(d)).name];
    acc.first += r.swapped_time_ms;
    acc.second += r.observed_time_ms;
  }
  result.avg_sm_util = sm_sum / static_cast<double>(cluster_.num_devices());
  result.avg_mem_util = mem_sum / static_cast<double>(cluster_.num_devices());
  for (const auto& [name, acc] : swap_acc) {
    result.swap_time_fraction[name] = acc.second > 0.0 ? acc.first / acc.second : 0.0;
  }
  result.swap_events = memory_manager_.records().size();
  result.swap_total_mb = memory_manager_.total_swapped_out_mb();
  result.util_series = util_series_;
  result.device_series = device_series_;
  result.placement_overheads_ms = policy_->placement_overheads_ms();
  result.tuning_iterations = policy_->tuning_iterations();

  // Availability / recovery aggregates.
  FaultMetrics& fm = result.faults;
  fm.faults_injected = fault_injector_->faults_injected();
  fm.device_failures = fault_injector_->device_failures();
  fm.devices_recovered = fault_injector_->devices_recovered();
  fm.total_downtime_ms = fault_injector_->TotalDowntimeMs(sim_.Now());
  fm.trainings_displaced = trainings_displaced_;
  fm.trainings_replaced = trainings_replaced_;
  fm.work_lost_ms = work_lost_ms_;
  fm.mean_replacement_ms =
      trainings_replaced_ == 0
          ? 0.0
          : replacement_time_sum_ms_ / static_cast<double>(trainings_replaced_);
  fm.failed_requests = failed_requests_;
  fm.rerouted_requests = rerouted_requests_;
  double total_served = 0.0;
  for (const auto& r : replicas_) {
    total_served += r.served;
  }
  fm.goodput_rps = sim_.Now() > 0.0 ? total_served / (sim_.Now() / kMsPerSecond) : 0.0;

  // Control-plane fault/recovery aggregates (all zero without a ctrl plan).
  if (ctrl_enabled_) {
    ControlMetrics& cm = result.ctrl;
    cm.events_injected = ctrl_injector_->events_injected();
    cm.kv_partitions = ctrl_injector_->partitions();
    cm.watch_losses = ctrl_injector_->watch_losses();
    cm.scheduler_crashes = ctrl_injector_->scheduler_crashes();
    cm.scheduler_recoveries = scheduler_recoveries_;
    cm.total_recovery_ms = recovery_ms_sum_;
    cm.retries = static_cast<size_t>(recovery_retrier_->total_retries() +
                                     watch_retrier_->total_retries());
    cm.stale_reads = static_cast<size_t>(registry_.stale_reads());
    cm.unavailable_reads = static_cast<size_t>(registry_.unavailable_reads());
    cm.watch_delivered = static_cast<size_t>(registry_.watch_delivered());
    cm.watch_dropped = static_cast<size_t>(registry_.watch_dropped());
    cm.watch_lost_partition = static_cast<size_t>(registry_.watch_lost_partition());
    cm.configs_published = configs_published_;
    cm.configs_applied = configs_applied_;
    cm.stale_scan_entries = stale_scan_entries_;
    if (telemetry_.enabled()) {
      auto& metrics = telemetry_.metrics();
      metrics.GetCounter("ctrl.retries").Increment(static_cast<double>(cm.retries));
      metrics.GetCounter("ctrl.stale_reads").Increment(static_cast<double>(cm.stale_reads));
      metrics.GetGauge("ctrl.recovery_ms").Set(cm.total_recovery_ms);
    }
  }

  if (telemetry_.enabled()) {
    auto& metrics = telemetry_.metrics();
    metrics.GetGauge("exp.makespan_ms").Set(result.makespan_ms);
    metrics.GetGauge("exp.avg_sm_util").Set(result.avg_sm_util);
    metrics.GetGauge("exp.avg_mem_util").Set(result.avg_mem_util);
    metrics.GetGauge("queue.final_max_depth").Set(static_cast<double>(queue_.max_depth()));
    telemetry_.Flush(result.policy_name);
  }

  // Self-profiling export: snapshot the simulator's dispatch totals and the
  // run's workload counters (observe-only, end-of-run, zero hot-path cost).
  if (perf::PerfCollector* collector = perf()) {
    sim_.ExportPerfCounters(collector);
    collector->SetCounter("exp.tasks_total", result.tasks.size());
    collector->SetCounter("exp.tasks_completed", result.CompletedTasks());
    double served = 0.0;
    for (const auto& r : replicas_) {
      served += r.served;
    }
    collector->SetCounter("exp.requests_served", static_cast<uint64_t>(served));
  }

  // End-of-run SLO attribution into the trace, so trace_diff can report
  // outcome deltas between two recorded runs.
  if (options_.recorder != nullptr) {
    replay::TraceRunSummary summary;
    summary.makespan_ms = result.makespan_ms;
    summary.tasks_completed = result.CompletedTasks();
    for (const auto& [name, m] : result.per_service) {
      replay::TraceServiceSummary s;
      s.service = name;
      s.windows_total = m.windows_total;
      s.windows_violated = m.windows_violated;
      s.windows_violated_failure = m.windows_violated_failure;
      s.served_requests = m.served_requests;
      s.mean_latency_ms = m.mean_latency_ms;
      summary.services.push_back(std::move(s));
    }
    options_.recorder->RecordRunSummary(summary);
  }
  return result;
}

}  // namespace mudi
