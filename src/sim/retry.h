// Sanctioned control-plane retry/backoff discipline (DESIGN.md §13).
//
// All retried control-plane work — KvStore reads during a partition, watch
// re-establishment after a watch-loss event, the scheduler recovery scan —
// must route through this header. `BackoffDelayMs` computes capped
// exponential backoff with deterministic jitter drawn from the caller's
// seeded Rng (no ambient randomness, so same-seed replays are bit-identical).
// `Retrier` drives an asynchronous attempt loop on the Simulator: run the
// attempt; on a non-OK Status re-schedule after the next backoff; stop on
// success, attempt exhaustion, or deadline.
//
// mudi_lint's `mudi-retry` check bans ad-hoc retry loops and naked
// re-ScheduleAfter polling of the KvStore everywhere outside this file, so
// backoff parameters and retry telemetry stay in one auditable place.
#ifndef SRC_SIM_RETRY_H_
#define SRC_SIM_RETRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/sim/simulator.h"

namespace mudi {

struct RetryPolicy {
  // Backoff before the k-th retry is
  //   min(initial_backoff_ms * multiplier^(k-1), max_backoff_ms)
  // plus jitter uniform in [0, jitter_frac * backoff).
  TimeMs initial_backoff_ms = 50.0;
  double multiplier = 2.0;
  TimeMs max_backoff_ms = 5.0 * kMsPerSecond;
  double jitter_frac = 0.25;
  // Total attempts allowed (first try + retries). 0 = unbounded; the caller
  // is then responsible for the condition eventually clearing (e.g. a
  // partition window ending).
  int max_attempts = 0;
  // Give up this long after Start() (virtual ms). 0 = no deadline.
  TimeMs deadline_ms = 0.0;

  Status Validate() const {
    if (initial_backoff_ms < 0.0 || max_backoff_ms < initial_backoff_ms) {
      return InvalidArgumentError("retry policy: backoff bounds inverted");
    }
    if (multiplier < 1.0) {
      return InvalidArgumentError("retry policy: multiplier must be >= 1");
    }
    if (jitter_frac < 0.0 || jitter_frac > 1.0) {
      return InvalidArgumentError("retry policy: jitter_frac outside [0, 1]");
    }
    if (max_attempts < 0 || deadline_ms < 0.0) {
      return InvalidArgumentError("retry policy: negative attempt/deadline bound");
    }
    return Status::Ok();
  }
};

// Backoff (ms) to sleep before retry number `retry_index` (1 = first retry).
// Jitter is drawn from `rng`, so callers holding forked streams get
// independent, reproducible delays.
inline TimeMs BackoffDelayMs(const RetryPolicy& policy, int retry_index, Rng& rng) {
  MUDI_CHECK_GE(retry_index, 1);
  TimeMs backoff = policy.initial_backoff_ms;
  for (int i = 1; i < retry_index && backoff < policy.max_backoff_ms; ++i) {
    backoff *= policy.multiplier;
  }
  if (backoff > policy.max_backoff_ms) {
    backoff = policy.max_backoff_ms;
  }
  if (policy.jitter_frac > 0.0) {
    backoff += rng.Uniform(0.0, policy.jitter_frac * backoff);
  }
  return backoff;
}

// Asynchronous retry driver. One Retrier runs at most one attempt loop at a
// time; Start() while a loop is in flight cancels the pending attempt and
// begins a fresh loop (this is exactly what a crash-during-recovery needs).
// All scheduling goes through the owning Simulator, so retries are ordinary
// deterministic events.
class Retrier {
 public:
  using AttemptFn = std::function<Status()>;
  // Invoked once per loop with the final status (OK, or the last failure
  // when attempts/deadline ran out) and the number of attempts made.
  using DoneFn = std::function<void(const Status&, int attempts)>;

  Retrier(Simulator* sim, RetryPolicy policy, Rng rng)
      : sim_(sim), policy_(std::move(policy)), rng_(rng) {
    MUDI_CHECK(sim_ != nullptr);
    MUDI_CHECK_OK(policy_.Validate());
  }

  Retrier(const Retrier&) = delete;
  Retrier& operator=(const Retrier&) = delete;

  // Schedules the first attempt `initial_delay_ms` from now.
  void Start(TimeMs initial_delay_ms, AttemptFn attempt, DoneFn done) {
    MUDI_CHECK_GE(initial_delay_ms, 0.0);
    MUDI_CHECK(attempt != nullptr);
    Cancel();
    attempt_ = std::move(attempt);
    done_ = std::move(done);
    attempts_made_ = 0;
    started_at_ms_ = sim_->Now();
    pending_ = sim_->ScheduleAfter(initial_delay_ms, [this] { RunAttempt(); });
  }

  // Abandons the loop in flight (no DoneFn call). No-op when idle.
  void Cancel() {
    if (pending_ != Simulator::kInvalidEventId) {
      (void)sim_->Cancel(pending_);
      pending_ = Simulator::kInvalidEventId;
    }
    attempt_ = nullptr;
    done_ = nullptr;
  }

  bool active() const { return pending_ != Simulator::kInvalidEventId; }
  // Attempts made by the current/most recent loop.
  int attempts() const { return attempts_made_; }
  // Re-attempts (attempts beyond the first) across the Retrier's lifetime;
  // the feed for the ctrl.retries telemetry counter.
  uint64_t total_retries() const { return total_retries_; }

 private:
  void RunAttempt() {
    pending_ = Simulator::kInvalidEventId;
    ++attempts_made_;
    if (attempts_made_ > 1) {
      ++total_retries_;
    }
    Status status = attempt_();
    if (status.ok()) {
      Finish(status);
      return;
    }
    if (policy_.max_attempts > 0 && attempts_made_ >= policy_.max_attempts) {
      Finish(status);
      return;
    }
    TimeMs backoff = BackoffDelayMs(policy_, attempts_made_, rng_);
    if (policy_.deadline_ms > 0.0 &&
        sim_->Now() + backoff > started_at_ms_ + policy_.deadline_ms) {
      Finish(status);
      return;
    }
    pending_ = sim_->ScheduleAfter(backoff, [this] { RunAttempt(); });
  }

  void Finish(const Status& status) {
    DoneFn done = std::move(done_);
    attempt_ = nullptr;
    done_ = nullptr;
    if (done != nullptr) {
      done(status, attempts_made_);
    }
  }

  Simulator* sim_;
  RetryPolicy policy_;
  Rng rng_;
  AttemptFn attempt_;
  DoneFn done_;
  Simulator::EventId pending_ = Simulator::kInvalidEventId;
  int attempts_made_ = 0;
  uint64_t total_retries_ = 0;
  TimeMs started_at_ms_ = 0.0;
};

}  // namespace mudi

#endif  // SRC_SIM_RETRY_H_
