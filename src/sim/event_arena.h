// Slab arena for simulator events. Events live in 256-entry slabs that are
// never freed or moved while the Simulator exists, so an event is addressed
// by a 32-bit slot index that stays valid across queue reshuffles — the
// calendar queue orders 20-byte {time, seq, slot} items while the (larger,
// callback-carrying) Event stays put. Freed slots are recycled LIFO, so the
// steady-state hot path touches the same few cache-warm slots instead of
// growing the heap: after warm-up, schedule/fire costs zero allocations
// (together with SmallFunction; asserted via mudi_perf_alloc_hook).
#ifndef SRC_SIM_EVENT_ARENA_H_
#define SRC_SIM_EVENT_ARENA_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/check.h"
#include "src/common/small_function.h"

namespace mudi {

class EventArena {
 public:
  using Slot = uint32_t;
  static constexpr Slot kNullSlot = 0xFFFFFFFFu;

  struct Event {
    double time = 0.0;
    double period = 0.0;  // > 0 marks a periodic event
    uint64_t seq = 0;
    uint64_t id = 0;
    SmallFunction<void()> cb;
  };

  EventArena() = default;
  EventArena(const EventArena&) = delete;
  EventArena& operator=(const EventArena&) = delete;

  // MUDI_HOT_PATH  Allocate/Recycle run once per scheduled event; after
  // warm-up every Allocate is served from the free list with zero heap
  // traffic (perf_test pins the 0-alloc steady state).
  // Returns a slot whose Event is default-initialized (cb empty).
  Slot Allocate() {
    if (!free_.empty()) {
      Slot slot = free_.back();
      free_.pop_back();
      return slot;
    }
    if (next_fresh_ == slabs_.size() * kSlabSize) {
      // Slab growth happens only while the live-event high-water mark is
      // still rising, never at steady state.
      // NOLINTNEXTLINE(mudi-hot-path-alloc): one-way high-water-mark growth
      slabs_.push_back(std::make_unique<Event[]>(kSlabSize));
    }
    return next_fresh_++;
  }

  // Destroys the slot's callback (releasing captured state now, not at some
  // future reuse) and recycles the slot.
  void Recycle(Slot slot) {
    Event& ev = (*this)[slot];
    ev.cb = nullptr;
    // free_ only grows to the high-water mark of live events, then its
    // capacity is reused forever.
    // NOLINTNEXTLINE(mudi-hot-path-alloc): one-way high-water-mark growth
    free_.push_back(slot);
  }
  // MUDI_HOT_PATH_END

  Event& operator[](Slot slot) {
    MUDI_CHECK_LT(slot, next_fresh_);
    return slabs_[slot >> kSlabBits][slot & (kSlabSize - 1)];
  }
  const Event& operator[](Slot slot) const {
    MUDI_CHECK_LT(slot, next_fresh_);
    return slabs_[slot >> kSlabBits][slot & (kSlabSize - 1)];
  }

  size_t slabs() const { return slabs_.size(); }
  size_t capacity() const { return slabs_.size() * kSlabSize; }
  size_t free_slots() const { return free_.size(); }
  size_t high_water() const { return next_fresh_; }

 private:
  static constexpr size_t kSlabBits = 8;
  static constexpr size_t kSlabSize = size_t{1} << kSlabBits;

  std::vector<std::unique_ptr<Event[]>> slabs_;
  std::vector<Slot> free_;  // LIFO: reuse the most recently freed slot first
  Slot next_fresh_ = 0;
};

}  // namespace mudi

#endif  // SRC_SIM_EVENT_ARENA_H_
