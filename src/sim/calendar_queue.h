// Calendar (bucket) priority queue for the simulator's event horizon.
//
// A binary heap pays O(log n) comparisons per push/pop with poor locality.
// Simulation time is ms-granular and events cluster near the clock, so a
// calendar queue maps each event to a 1 ms-wide bucket inside a window of
// B ticks; a bucket is sorted once, lazily, when the clock first enters it
// (by then almost all of its events have arrived, so most items are sorted
// exactly once and pushes are O(1) push_backs). Events past the window go to
// a min-heap overflow that migrates into the calendar as the window slides.
// A bitmap over buckets makes "next non-empty bucket" a word scan.
//
// Window geometry: physical index = tick mod B, and the valid window
// [base, base + B) slides forward in half-window steps (base is a multiple
// of Q = B/2, advanced whenever the cursor crosses base + Q). Sliding by
// half-windows keeps at least Q ticks of look-ahead in front of the cursor
// at all times — with an aligned window that only jumps a full B, the
// look-ahead would shrink to zero as the cursor neared the window end and
// most pushes would detour through the overflow heap. Residues are unique
// within any B-tick span, so a non-empty bucket always holds exactly one
// tick's events and index→tick is unambiguous.
//
// Ordering contract: strictly ascending (time, seq) — identical to the
// std::priority_queue it replaces, so the documented tie-break-by-scheduling
// -order behaviour of Simulator is preserved bit-for-bit. Determinism falls
// out of seq being unique: every comparison is a strict total order, so no
// container reshuffling can change pop order. One usage constraint,
// honoured by the Simulator by construction: a pushed item must not order
// before an already-popped item (its time is >= the clock, i.e. >= the last
// pop), which is what lets a partially-consumed bucket accept sorted inserts
// behind its unconsumed tail.
#ifndef SRC_SIM_CALENDAR_QUEUE_H_
#define SRC_SIM_CALENDAR_QUEUE_H_

#include <algorithm>
#include <cstdint>
#include <queue>
#include <vector>

#include "src/common/check.h"

namespace mudi {

class CalendarQueue {
 public:
  struct Item {
    double time = 0.0;
    uint64_t seq = 0;   // unique; tie-break among same-time items
    uint32_t slot = 0;  // opaque payload (EventArena slot for the Simulator)
  };

  explicit CalendarQueue(double bucket_width_ms = 1.0, size_t num_buckets = 8192)
      : width_(bucket_width_ms), inv_width_(1.0 / bucket_width_ms), num_buckets_(num_buckets) {
    MUDI_CHECK_GT(width_, 0.0);
    MUDI_CHECK_GE(num_buckets_, 2u);
    MUDI_CHECK_EQ(num_buckets_ & (num_buckets_ - 1), 0u);  // power of two
    buckets_.resize(num_buckets_);
    occupied_.resize((num_buckets_ + 63) / 64, 0);
  }
  CalendarQueue(const CalendarQueue&) = delete;
  CalendarQueue& operator=(const CalendarQueue&) = delete;

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  // Pushing never rejects: in-window items go to their bucket, far-future
  // items to the overflow heap, and an item behind the window (the clock
  // idled forward past a gap, then something scheduled into it) re-bases the
  // whole calendar around it — rare and O(live items).
  // MUDI_HOT_PATH  Push/PeekMin/PopMin run once per simulated event; the
  // steady state must stay allocation-free (perf_test pins it with the alloc
  // hook). Every allocating idiom below is an amortized warm-up or a
  // sanctioned cold spill and carries a NOLINT saying why.
  void Push(const Item& item) {
    MUDI_CHECK_GE(item.time, 0.0);
    int64_t tick = TickOf(item.time);
    if (tick < base_tick_) {
      SpillAndRebase(tick);
    }
    ++size_;
    if (tick >= base_tick_ + static_cast<int64_t>(num_buckets_)) {
      // Far-future spill: rare by the window-sizing argument above, and the
      // heap reuses freed capacity.
      // NOLINTNEXTLINE(mudi-hot-path-alloc): sanctioned cold-path spill
      overflow_.push(item);
      return;
    }
    InsertBucket(item, tick);
    if (tick < cursor_tick_) {
      cursor_tick_ = tick;  // the new item may now be the global minimum
    }
  }

  // Returns the minimum item, or nullptr when empty. The pointer is
  // invalidated by any Push or PopMin.
  const Item* PeekMin() {
    if (size_ == 0) {
      return nullptr;
    }
    if (CalendarCount() == 0) {
      // Only far-future items remain. Every overflow tick is >= base + B >
      // every (nonexistent) calendar tick, so the heap top IS the global
      // minimum: serve it in place instead of dragging the window out to it
      // — a premature window jump would strand later near-time pushes
      // behind base and force a spill per push.
      return &overflow_.top();
    }
    size_t idx = NextOccupiedCircular(IndexOf(cursor_tick_));
    MUDI_CHECK_LT(idx, num_buckets_);
    // Map the physical index back to its unique in-window tick.
    int64_t off =
        static_cast<int64_t>((idx - IndexOf(base_tick_)) & (num_buckets_ - 1));
    cursor_tick_ = base_tick_ + off;
    // Slide the window in half-window steps so pushes always have at least
    // Q ticks of look-ahead, then let newly-in-range overflow items in.
    bool advanced = false;
    while (cursor_tick_ >= base_tick_ + HalfWindow()) {
      base_tick_ += HalfWindow();
      advanced = true;
    }
    if (advanced) {
      ++migrations_;
      MigrateOverflowIn();
    }
    Bucket& b = buckets_[idx];
    if (!b.sorted) {
      std::sort(b.items.begin(), b.items.end(), Before);
      b.head = 0;
      b.sorted = true;
    }
    return &b.items[b.head];
  }

  Item PopMin() {
    MUDI_CHECK_GT(size_, 0u);
    if (CalendarCount() == 0) {
      // Pop straight off the overflow heap, then move the window up to the
      // popped item: the simulation clock has reached it, so (by the usage
      // contract) everything scheduled from here on is at or after it — the
      // rest of its cluster migrates into buckets and gets O(1) treatment.
      Item item = overflow_.top();
      overflow_.pop();
      --size_;
      int64_t tick = TickOf(item.time);
      if (tick >= base_tick_ + static_cast<int64_t>(num_buckets_)) {
        base_tick_ = AlignDown(tick);
        cursor_tick_ = tick;
        ++migrations_;
      }
      MigrateOverflowIn();
      return item;
    }
    const Item* top = PeekMin();
    MUDI_CHECK(top != nullptr);
    Item item = *top;
    size_t idx = IndexOf(cursor_tick_);
    Bucket& b = buckets_[idx];
    ++b.head;
    --size_;
    if (b.head == b.items.size()) {
      ResetBucket(idx);
    }
    return item;
  }
  // MUDI_HOT_PATH_END

  // Observational stats for perf counters.
  uint64_t migrations() const { return migrations_; }
  uint64_t spills() const { return spills_; }
  size_t overflow_size() const { return overflow_.size(); }

 private:
  struct Bucket {
    std::vector<Item> items;
    size_t head = 0;  // items[0, head) already popped
    bool sorted = false;
  };
  static bool Before(const Item& a, const Item& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    return a.seq < b.seq;
  }
  struct Later {
    bool operator()(const Item& a, const Item& b) const { return Before(b, a); }
  };

  // Items bucketed in the calendar window (the rest sit in the overflow heap).
  size_t CalendarCount() const { return size_ - overflow_.size(); }

  int64_t TickOf(double t) const { return static_cast<int64_t>(t * inv_width_); }
  size_t IndexOf(int64_t tick) const {
    return static_cast<size_t>(tick) & (num_buckets_ - 1);
  }
  int64_t HalfWindow() const { return static_cast<int64_t>(num_buckets_ / 2); }
  int64_t AlignDown(int64_t tick) const { return (tick / HalfWindow()) * HalfWindow(); }

  // MUDI_HOT_PATH  called from Push for every in-window event.
  void InsertBucket(const Item& item, int64_t tick) {
    size_t idx = IndexOf(tick);
    Bucket& b = buckets_[idx];
    if (b.sorted) {
      // The bucket is or was under the cursor. Consumed items live in
      // [0, head); keep [head, end) ordered. By the usage contract the new
      // item orders after everything consumed, so inserting at upper_bound
      // within the unconsumed tail is exact.
      auto pos = std::upper_bound(b.items.begin() + b.head, b.items.end(), item, Before);
      // ResetBucket clears but keeps capacity, so steady-state inserts
      // reuse it; growth happens during warm-up only.
      // NOLINTNEXTLINE(mudi-hot-path-alloc): capacity reused after warm-up
      b.items.insert(pos, item);
    } else {
      // Same capacity-reuse argument — perf_test's 0-alloc steady-state
      // proof covers this push_back.
      // NOLINTNEXTLINE(mudi-hot-path-alloc): capacity reused after warm-up
      b.items.push_back(item);
    }
    occupied_[idx >> 6] |= uint64_t{1} << (idx & 63);
  }
  // MUDI_HOT_PATH_END

  void ResetBucket(size_t idx) {
    Bucket& b = buckets_[idx];
    b.items.clear();
    b.head = 0;
    b.sorted = false;
    occupied_[idx >> 6] &= ~(uint64_t{1} << (idx & 63));
  }

  // Pulls every overflow item that now fits the window into its bucket.
  // Heap pops arrive in ascending (time, seq), so a previously-empty bucket
  // fills already sorted; InsertBucket handles the mixed case generically.
  void MigrateOverflowIn() {
    while (!overflow_.empty() &&
           TickOf(overflow_.top().time) < base_tick_ + static_cast<int64_t>(num_buckets_)) {
      InsertBucket(overflow_.top(), TickOf(overflow_.top().time));
      overflow_.pop();
    }
  }

  // A push landed before the window: collect all live calendar items, rebase
  // the window around the new minimum, and reinsert (to buckets or overflow
  // as their ticks now dictate). Only reachable after the window jumped over
  // an idle gap, so it is rare; correctness over speed here.
  void SpillAndRebase(int64_t tick) {
    ++spills_;
    std::vector<Item> live;
    for (size_t idx = 0; CalendarCount() != live.size() && idx < num_buckets_; ++idx) {
      Bucket& b = buckets_[idx];
      if (b.items.empty()) {
        continue;
      }
      live.insert(live.end(), b.items.begin() + b.head, b.items.end());
      ResetBucket(idx);
    }
    base_tick_ = AlignDown(tick);
    cursor_tick_ = tick;
    for (const Item& item : live) {
      int64_t t = TickOf(item.time);
      if (t >= base_tick_ + static_cast<int64_t>(num_buckets_)) {
        overflow_.push(item);
      } else {
        InsertBucket(item, t);
      }
    }
  }

  // First occupied physical index in circular order starting at `from`, or
  // num_buckets_ when the calendar is empty. Word-at-a-time bitmap scan.
  size_t NextOccupiedCircular(size_t from) const {
    const size_t words = occupied_.size();
    size_t word = from >> 6;
    uint64_t bits = occupied_[word] & (~uint64_t{0} << (from & 63));
    for (size_t scanned = 0; scanned <= words; ++scanned) {
      if (bits != 0) {
        return (word << 6) + static_cast<size_t>(__builtin_ctzll(bits));
      }
      word = word + 1 == words ? 0 : word + 1;
      bits = occupied_[word];
    }
    return num_buckets_;
  }

  double width_;
  double inv_width_;
  size_t num_buckets_;
  std::vector<Bucket> buckets_;
  std::vector<uint64_t> occupied_;
  std::priority_queue<Item, std::vector<Item>, Later> overflow_;
  int64_t base_tick_ = 0;    // window start; multiple of HalfWindow()
  int64_t cursor_tick_ = 0;  // tick of the bucket holding the current minimum
  size_t size_ = 0;
  uint64_t migrations_ = 0;
  uint64_t spills_ = 0;
};

}  // namespace mudi

#endif  // SRC_SIM_CALENDAR_QUEUE_H_
