#include "src/sim/simulator.h"

#include <utility>

#include "src/common/check.h"
#include "src/telemetry/telemetry.h"

namespace mudi {

void Simulator::SetTelemetry(Telemetry* telemetry) {
  if (telemetry == nullptr || !telemetry->enabled()) {
    fired_counter_ = nullptr;
    scheduled_counter_ = nullptr;
    cancelled_counter_ = nullptr;
    return;
  }
  fired_counter_ = &telemetry->metrics().GetCounter("sim.events_fired");
  scheduled_counter_ = &telemetry->metrics().GetCounter("sim.events_scheduled");
  cancelled_counter_ = &telemetry->metrics().GetCounter("sim.events_cancelled");
}

Simulator::EventId Simulator::Push(TimeMs t, TimeMs period, Callback cb, EventId reuse_id) {
  MUDI_CHECK_GE(t, now_);
  MUDI_CHECK(cb != nullptr);
  EventId id = reuse_id != kInvalidEventId ? reuse_id : next_id_++;
  queue_.push(Entry{t, next_seq_++, id, period, std::move(cb)});
  live_.insert(id);
  ++events_scheduled_;
  if (scheduled_counter_ != nullptr) {
    scheduled_counter_->Increment();
  }
  return id;
}

Simulator::EventId Simulator::ScheduleAt(TimeMs t, Callback cb) {
  return Push(t, /*period=*/0.0, std::move(cb));
}

Simulator::EventId Simulator::ScheduleAfter(TimeMs delay, Callback cb) {
  MUDI_CHECK_GE(delay, 0.0);
  return Push(now_ + delay, /*period=*/0.0, std::move(cb));
}

Simulator::EventId Simulator::SchedulePeriodic(TimeMs start, TimeMs period, Callback cb) {
  MUDI_CHECK_GT(period, 0.0);
  return Push(start, period, std::move(cb));
}

bool Simulator::Cancel(EventId id) {
  // Only ids with a live queue entry are cancellable: already-fired one-shots
  // and double-cancels fall through here instead of being recorded as stale
  // cancellations that would corrupt pending_events() forever.
  if (live_.erase(id) == 0) {
    return false;
  }
  MUDI_CHECK(cancelled_.insert(id).second);
  ++stale_cancellations_;
  ++events_cancelled_;
  if (cancelled_counter_ != nullptr) {
    cancelled_counter_->Increment();
  }
  return true;
}

bool Simulator::SkipCancelled() {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    auto it = cancelled_.find(top.id);
    if (it == cancelled_.end()) {
      return true;
    }
    cancelled_.erase(it);
    MUDI_CHECK_GT(stale_cancellations_, 0u);
    --stale_cancellations_;
    queue_.pop();
  }
  return false;
}

bool Simulator::Step() {
  if (!SkipCancelled()) {
    return false;
  }
  Entry entry = queue_.top();
  queue_.pop();
  live_.erase(entry.id);
  MUDI_CHECK_GE(entry.time, now_);
  now_ = entry.time;
  ++events_processed_;
  if (fired_counter_ != nullptr) {
    fired_counter_->Increment();
  }
  if (entry.period > 0.0) {
    // Re-arm before running so the callback can Cancel() its own id.
    Push(entry.time + entry.period, entry.period, entry.cb, entry.id);
  }
  entry.cb();
  return true;
}

void Simulator::RunUntil(TimeMs t) {
  MUDI_CHECK_GE(t, now_);
  while (SkipCancelled() && queue_.top().time <= t) {
    Step();
  }
  now_ = t;
}

void Simulator::RunUntilIdle() {
  while (Step()) {
  }
}

}  // namespace mudi
