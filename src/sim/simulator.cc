#include "src/sim/simulator.h"

#include <utility>

#include "src/common/check.h"
#include "src/perf/perf_collector.h"
#include "src/telemetry/telemetry.h"

namespace mudi {

void Simulator::SetTelemetry(Telemetry* telemetry) {
  if (telemetry == nullptr || !telemetry->enabled()) {
    fired_counter_ = nullptr;
    scheduled_counter_ = nullptr;
    cancelled_counter_ = nullptr;
    return;
  }
  fired_counter_ = &telemetry->metrics().GetCounter("sim.events_fired");
  scheduled_counter_ = &telemetry->metrics().GetCounter("sim.events_scheduled");
  cancelled_counter_ = &telemetry->metrics().GetCounter("sim.events_cancelled");
}

void Simulator::ExportPerfCounters(perf::PerfCollector* collector) const {
  if (collector == nullptr || !collector->enabled()) {
    return;
  }
  collector->SetCounter("sim.events_fired", events_processed_);
  collector->SetCounter("sim.events_scheduled", events_scheduled_);
  collector->SetCounter("sim.events_cancelled", events_cancelled_);
  collector->SetCounter("sim.events_pending", live_count_);
}

void Simulator::SetState(EventId id, EventState s) {
  if (id >= state_.size()) {
    state_.resize(static_cast<size_t>(id) + 1, static_cast<uint8_t>(EventState::kDead));
  }
  state_[id] = static_cast<uint8_t>(s);
}

Simulator::EventId Simulator::Push(TimeMs t, TimeMs period, Callback cb, EventId reuse_id) {
  MUDI_CHECK_GE(t, now_);
  MUDI_CHECK(cb != nullptr);
  EventId id = reuse_id != kInvalidEventId ? reuse_id : next_id_++;
  queue_.push(Entry{t, next_seq_++, id, period, std::move(cb)});
  SetState(id, EventState::kLive);
  ++live_count_;
  ++events_scheduled_;
  if (scheduled_counter_ != nullptr) {
    scheduled_counter_->Increment();
  }
  return id;
}

Simulator::EventId Simulator::ScheduleAt(TimeMs t, Callback cb) {
  return Push(t, /*period=*/0.0, std::move(cb));
}

Simulator::EventId Simulator::ScheduleAfter(TimeMs delay, Callback cb) {
  MUDI_CHECK_GE(delay, 0.0);
  return Push(now_ + delay, /*period=*/0.0, std::move(cb));
}

Simulator::EventId Simulator::SchedulePeriodic(TimeMs start, TimeMs period, Callback cb) {
  MUDI_CHECK_GT(period, 0.0);
  return Push(start, period, std::move(cb));
}

bool Simulator::Cancel(EventId id) {
  // Only ids with a live queue entry are cancellable: already-fired one-shots
  // and double-cancels fall through here instead of being recorded as stale
  // cancellations that would corrupt pending_events() forever.
  if (State(id) != EventState::kLive) {
    return false;
  }
  SetState(id, EventState::kCancelled);
  MUDI_CHECK_GT(live_count_, 0u);
  --live_count_;
  ++stale_cancellations_;
  ++events_cancelled_;
  if (cancelled_counter_ != nullptr) {
    cancelled_counter_->Increment();
  }
  return true;
}

bool Simulator::SkipCancelled() {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (State(top.id) != EventState::kCancelled) {
      return true;
    }
    SetState(top.id, EventState::kDead);
    MUDI_CHECK_GT(stale_cancellations_, 0u);
    --stale_cancellations_;
    queue_.pop();
  }
  return false;
}

bool Simulator::Step() {
  if (!SkipCancelled()) {
    return false;
  }
  Entry entry = queue_.top();
  queue_.pop();
  SetState(entry.id, EventState::kDead);
  MUDI_CHECK_GT(live_count_, 0u);
  --live_count_;
  MUDI_CHECK_GE(entry.time, now_);
  now_ = entry.time;
  ++events_processed_;
  if (fired_counter_ != nullptr) {
    fired_counter_->Increment();
  }
  if (entry.period > 0.0) {
    // Re-arm before running so the callback can Cancel() its own id.
    Push(entry.time + entry.period, entry.period, entry.cb, entry.id);
  }
  entry.cb();
  return true;
}

void Simulator::RunUntil(TimeMs t) {
  MUDI_CHECK_GE(t, now_);
  while (SkipCancelled() && queue_.top().time <= t) {
    Step();
  }
  now_ = t;
}

void Simulator::RunUntilIdle() {
  while (Step()) {
  }
}

}  // namespace mudi
