#include "src/sim/simulator.h"

#include <utility>

#include "src/common/check.h"
#include "src/perf/perf_collector.h"
#include "src/telemetry/telemetry.h"

namespace mudi {

void Simulator::SetTelemetry(Telemetry* telemetry) {
  if (telemetry == nullptr || !telemetry->enabled()) {
    fired_counter_ = nullptr;
    scheduled_counter_ = nullptr;
    cancelled_counter_ = nullptr;
    return;
  }
  fired_counter_ = &telemetry->metrics().GetCounter("sim.events_fired");
  scheduled_counter_ = &telemetry->metrics().GetCounter("sim.events_scheduled");
  cancelled_counter_ = &telemetry->metrics().GetCounter("sim.events_cancelled");
}

void Simulator::ExportPerfCounters(perf::PerfCollector* collector) const {
  if (collector == nullptr || !collector->enabled()) {
    return;
  }
  collector->SetCounter("sim.events_fired", events_processed_);
  collector->SetCounter("sim.events_scheduled", events_scheduled_);
  collector->SetCounter("sim.events_cancelled", events_cancelled_);
  collector->SetCounter("sim.events_pending", live_count_);
  collector->SetCounter("sim.calendar_migrations", queue_.migrations());
  collector->SetCounter("sim.arena_slabs", arena_.slabs());
}

// MUDI_HOT_PATH  SetState/Push/Step run once (or more) per simulated event;
// steady state is allocation-free (perf_test's alloc-hook proof). The two
// NOLINTed growth sites below are one-way high-water-mark expansions.
void Simulator::SetState(EventId id, EventState s) {
  if (id >= state_.size()) {
    // The state vector grows to the peak event-id once (ids are reused via
    // the free list), then never again.
    // NOLINTNEXTLINE(mudi-hot-path-alloc): one-way high-water-mark growth
    state_.resize(static_cast<size_t>(id) + 1, static_cast<uint8_t>(EventState::kDead));
  }
  state_[id] = static_cast<uint8_t>(s);
}

Simulator::EventId Simulator::Push(TimeMs t, TimeMs period, Callback cb, EventId reuse_id) {
  MUDI_CHECK_GE(t, now_);
  MUDI_CHECK(cb);
  EventId id = reuse_id != kInvalidEventId ? reuse_id : next_id_++;
  EventArena::Slot slot = arena_.Allocate();
  EventArena::Event& ev = arena_[slot];
  ev.time = t;
  ev.period = period;
  ev.seq = next_seq_++;
  ev.id = id;
  ev.cb = std::move(cb);
  queue_.Push(CalendarQueue::Item{t, ev.seq, slot});
  SetState(id, EventState::kLive);
  ++live_count_;
  ++events_scheduled_;
  if (scheduled_counter_ != nullptr) {
    scheduled_counter_->Increment();
  }
  return id;
}

Simulator::EventId Simulator::ScheduleAt(TimeMs t, Callback cb) {
  return Push(t, /*period=*/0.0, std::move(cb));
}

Simulator::EventId Simulator::ScheduleAfter(TimeMs delay, Callback cb) {
  MUDI_CHECK_GE(delay, 0.0);
  return Push(now_ + delay, /*period=*/0.0, std::move(cb));
}

Simulator::EventId Simulator::SchedulePeriodic(TimeMs start, TimeMs period, Callback cb) {
  MUDI_CHECK_GT(period, 0.0);
  return Push(start, period, std::move(cb));
}

bool Simulator::Cancel(EventId id) {
  // Only ids with a live queue entry are cancellable: already-fired one-shots
  // and double-cancels fall through here instead of being recorded as stale
  // cancellations that would corrupt pending_events() forever.
  if (State(id) != EventState::kLive) {
    return false;
  }
  SetState(id, EventState::kCancelled);
  MUDI_CHECK_GT(live_count_, 0u);
  --live_count_;
  ++stale_cancellations_;
  ++events_cancelled_;
  if (cancelled_counter_ != nullptr) {
    cancelled_counter_->Increment();
  }
  return true;
}

bool Simulator::SkipCancelled() {
  while (const CalendarQueue::Item* top = queue_.PeekMin()) {
    EventArena::Event& ev = arena_[top->slot];
    if (State(ev.id) != EventState::kCancelled) {
      return true;
    }
    SetState(ev.id, EventState::kDead);
    MUDI_CHECK_GT(stale_cancellations_, 0u);
    --stale_cancellations_;
    arena_.Recycle(top->slot);
    queue_.PopMin();
  }
  return false;
}

bool Simulator::Step() {
  if (!SkipCancelled()) {
    return false;
  }
  CalendarQueue::Item item = queue_.PopMin();
  EventArena::Event& ev = arena_[item.slot];
  MUDI_CHECK_GE(ev.time, now_);
  now_ = ev.time;
  ++events_processed_;
  if (fired_counter_ != nullptr) {
    fired_counter_->Increment();
  }
  if (ev.period > 0.0) {
    // Re-arm before running so the callback can Cancel() its own id: the
    // event keeps its arena slot and id, gets a fresh seq, and is pushed at
    // the next occurrence — no state flip, no allocation, no callback move.
    // The callback is then invoked from its (re-queued) slot; Cancel during
    // the call marks the state and the slot is reaped lazily.
    ev.time += ev.period;
    ev.seq = next_seq_++;
    queue_.Push(CalendarQueue::Item{ev.time, ev.seq, item.slot});
    ++events_scheduled_;
    if (scheduled_counter_ != nullptr) {
      scheduled_counter_->Increment();
    }
    ev.cb();
    return true;
  }
  // One-shot: move the callback out and recycle the slot *before* invoking,
  // so events the callback schedules reuse this still-cache-warm slot.
  SetState(ev.id, EventState::kDead);
  MUDI_CHECK_GT(live_count_, 0u);
  --live_count_;
  Callback cb = std::move(ev.cb);
  arena_.Recycle(item.slot);
  cb();
  return true;
}
// MUDI_HOT_PATH_END

void Simulator::RunUntil(TimeMs t) {
  MUDI_CHECK_GE(t, now_);
  while (SkipCancelled() && queue_.PeekMin()->time <= t) {
    Step();
  }
  now_ = t;
}

void Simulator::RunUntilIdle() {
  while (Step()) {
  }
}

}  // namespace mudi
