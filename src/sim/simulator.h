// Discrete-event simulation engine.
//
// A Simulator owns a virtual clock (milliseconds, double) and a time-ordered
// event queue. Components schedule callbacks at absolute or relative virtual
// times; ties are broken by scheduling order so runs are deterministic.
// Periodic events re-arm themselves until cancelled. The engine is
// single-threaded by design — determinism matters more than parallelism for
// cluster-scheduling studies.
//
// Internals (see DESIGN.md §12): events live in a slab arena (EventArena)
// and are ordered by a calendar queue (CalendarQueue) holding 20-byte
// {time, seq, slot} items; callbacks are small-buffer-optimized
// (SmallFunction), so the steady-state schedule/fire/cancel path performs no
// heap allocation per event. Callbacks run from their arena slot; they may
// schedule and Cancel freely, but must not re-enter Run*/Step on the same
// Simulator.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "src/common/small_function.h"
#include "src/sim/calendar_queue.h"
#include "src/sim/event_arena.h"

namespace mudi {

class Telemetry;
namespace telemetry {
class Counter;
}  // namespace telemetry
namespace perf {
class PerfCollector;
}  // namespace perf

// Virtual time in milliseconds since simulation start.
using TimeMs = double;

constexpr TimeMs kMsPerSecond = 1000.0;
constexpr TimeMs kMsPerMinute = 60.0 * kMsPerSecond;
constexpr TimeMs kMsPerHour = 60.0 * kMsPerMinute;

class Simulator {
 public:
  using Callback = SmallFunction<void()>;
  using EventId = uint64_t;

  static constexpr EventId kInvalidEventId = 0;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeMs Now() const { return now_; }

  // Schedules `cb` at absolute virtual time `t` (must be >= Now()).
  EventId ScheduleAt(TimeMs t, Callback cb);

  // Schedules `cb` `delay` ms from now (delay must be >= 0).
  EventId ScheduleAfter(TimeMs delay, Callback cb);

  // Schedules `cb` every `period` ms, first firing at `start`. The callback
  // keeps firing until the returned id is cancelled.
  EventId SchedulePeriodic(TimeMs start, TimeMs period, Callback cb);

  // Cancels a pending (or periodic) event. Returns false if the id is not
  // pending — e.g. already fired (one-shot), already cancelled, or never
  // issued. Safe to call from inside the firing callback: a one-shot
  // cancelling its own id is a no-op (the event is no longer pending), while
  // a periodic event cancelling its own id stops the re-armed occurrence.
  bool Cancel(EventId id);

  // Runs events with time <= `t`, then advances the clock to exactly `t`.
  void RunUntil(TimeMs t);

  // Runs until the queue is empty.
  void RunUntilIdle();

  // Runs at most one event; returns false when the queue is empty.
  bool Step();

  size_t pending_events() const { return live_count_; }
  uint64_t events_processed() const { return events_processed_; }
  uint64_t events_scheduled() const { return events_scheduled_; }
  uint64_t events_cancelled() const { return events_cancelled_; }

  // Arena/queue internals, exposed for tests and perf counters.
  size_t arena_slabs() const { return arena_.slabs(); }
  size_t arena_high_water() const { return arena_.high_water(); }
  uint64_t calendar_migrations() const { return queue_.migrations(); }

  // Optional event-dispatch stats (scheduled/fired/cancelled counters).
  // Purely observational; passing nullptr detaches.
  void SetTelemetry(Telemetry* telemetry);

  // Exports the dispatch totals into the self-profiling collector
  // ("sim.events_*" counters). Snapshot-style — called at end of run, so the
  // per-event hot path pays nothing for profiling. Observe-only.
  void ExportPerfCounters(perf::PerfCollector* collector) const;

 private:
  // Per-id lifecycle, tracked in a flat vector indexed by EventId. An id has
  // at most one queue entry at any time (periodic re-arm pushes only after
  // the previous occurrence popped), so one byte of state suffices:
  //   kDead      no entry in the queue (never issued / fired / reaped)
  //   kLive      scheduled entry pending
  //   kCancelled entry still queued but Cancel()ed; reaped by SkipCancelled
  // This replaced two unordered_sets (live_/cancelled_): the per-event cost
  // of two hash inserts + two hash erases became two byte writes, the top
  // hot spot found by the src/perf self-attribution (see BENCH_throughput
  // "sim.event-state-vector"). The vector grows one byte per id ever issued
  // (ids are monotonic) — ~1 MB per million events, reset with the Simulator.
  enum class EventState : uint8_t { kDead = 0, kLive = 1, kCancelled = 2 };

  EventId Push(TimeMs t, TimeMs period, Callback cb, EventId reuse_id = kInvalidEventId);
  // Pops cancelled entries off the top; returns false when queue is empty.
  bool SkipCancelled();
  EventState State(EventId id) const {
    return id < state_.size() ? static_cast<EventState>(state_[id]) : EventState::kDead;
  }
  void SetState(EventId id, EventState s);

  TimeMs now_ = 0.0;
  uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  uint64_t events_processed_ = 0;
  uint64_t events_scheduled_ = 0;
  uint64_t events_cancelled_ = 0;
  size_t stale_cancellations_ = 0;
  size_t live_count_ = 0;
  // Cached registry objects (stable addresses) so the hot path pays one
  // branch + one add per event.
  telemetry::Counter* fired_counter_ = nullptr;
  telemetry::Counter* scheduled_counter_ = nullptr;
  telemetry::Counter* cancelled_counter_ = nullptr;
  EventArena arena_;
  CalendarQueue queue_;
  std::vector<uint8_t> state_;
};

}  // namespace mudi

#endif  // SRC_SIM_SIMULATOR_H_
