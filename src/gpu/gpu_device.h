// GPU device model: spatial-sharing (MPS) bookkeeping for one physical GPU
// or one MIG instance. Tracks the resident inference instance (at most one
// per device, per Mudi's design), co-located training instances, memory
// accounting with host-swap state, and utilization accumulators.
//
// The device is deliberately passive: the serving simulator and the
// schedulers mutate it and query the PerfOracle for timing; the device only
// enforces structural invariants (share bounds, memory bookkeeping).
#ifndef SRC_GPU_GPU_DEVICE_H_
#define SRC_GPU_GPU_DEVICE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/sim/simulator.h"
#include "src/workload/models.h"

namespace mudi {

class Telemetry;
namespace telemetry {
class Counter;
class Gauge;
}  // namespace telemetry

// A training task resident on a device.
struct TrainingInstance {
  int task_id = -1;
  size_t type_index = 0;               // into ModelZoo::TrainingTasks()
  double gpu_fraction = 0.0;           // MPS active-thread share
  double work_remaining_ms = 0.0;      // full-GPU ms of compute left
  double mem_required_mb = 0.0;        // full working-set footprint
  double mem_swapped_mb = 0.0;         // portion currently on the host
  TimeMs admitted_at_ms = 0.0;
  bool paused = false;                 // preempted during bursty QPS (§5.3.2)

  double mem_resident_mb() const { return mem_required_mb - mem_swapped_mb; }
};

// The (single) inference service instance resident on a device.
struct InferenceInstance {
  size_t service_index = 0;  // into ModelZoo::InferenceServices()
  int batch_size = 0;
  double gpu_fraction = 0.0;
  double mem_required_mb = 0.0;
};

// Memory footprint helpers (weights + optimizer state / activations + a
// fixed CUDA-context overhead).
double InferenceMemoryMb(const InferenceServiceSpec& spec, int batch_size);
double TrainingMemoryMb(const TrainingTaskSpec& spec);

// Iteration-time slowdown factor (>= 1) for a training instance given its
// current swap state: paged access over UM stalls compute. Lives here (not
// in the Memory Manager) because it is a pure function of the instance that
// both the live harness and the decision-trace replay environments apply.
double SwapSlowdownFactor(const TrainingInstance& training);

class GpuDevice {
 public:
  GpuDevice(int id, double memory_mb = ModelZoo::kGpuMemoryMb, double compute_scale = 1.0);

  int id() const { return id_; }
  double memory_mb() const { return memory_mb_; }
  // MIG instances have compute_scale < 1: oracle times divide by this.
  double compute_scale() const { return compute_scale_; }

  // --- fault state (driven by the fault-injection harness) ---
  // An unhealthy device serves nothing and accepts no placements; schedulers
  // must skip it. Health is a harness-level flag: the device keeps its
  // structural state so recovery can restart the replica in place.
  bool healthy() const { return healthy_; }
  void SetHealthy(bool healthy) { healthy_ = healthy; }
  // Straggler latency multiplier (>= 1): every oracle time on this device is
  // inflated by this factor. 1.0 = nominal speed.
  double slowdown() const { return slowdown_; }
  void SetSlowdown(double slowdown);
  // compute_scale adjusted for the active straggler episode; oracle times
  // divide by this instead of compute_scale() in latency computations.
  double EffectiveComputeScale() const { return compute_scale_ / slowdown_; }

  // --- inference instance (at most one) ---
  bool has_inference() const { return inference_.has_value(); }
  const InferenceInstance& inference() const;
  InferenceInstance& mutable_inference();
  void PlaceInference(InferenceInstance instance);
  void RemoveInference();

  // --- training instances ---
  const std::vector<TrainingInstance>& trainings() const { return trainings_; }
  std::vector<TrainingInstance>& mutable_trainings() { return trainings_; }
  void AddTraining(TrainingInstance instance);
  // Removes by task id; returns the removed instance.
  TrainingInstance RemoveTraining(int task_id);
  // Like RemoveTraining but tolerates a missing task (recovery paths race
  // with completion): returns nullopt instead of aborting.
  std::optional<TrainingInstance> TryRemoveTraining(int task_id);
  TrainingInstance* FindTraining(int task_id);
  const TrainingInstance* FindTraining(int task_id) const;
  size_t num_active_trainings() const;

  // --- memory accounting ---
  // Device-resident memory right now (respects swap state).
  double MemoryResidentMb() const;
  // Total requirement if everything were device-resident.
  double MemoryRequiredMb() const;
  double MemoryFreeMb() const { return memory_mb_ - MemoryResidentMb(); }
  // MB that must be swapped out (deficit) to fit; <= 0 when everything fits.
  double MemoryDeficitMb() const { return MemoryResidentMb() - memory_mb_; }

  // --- utilization accounting (Fig. 10) ---
  void AccumulateUsage(double duration_ms, double sm_util, double mem_util);
  double AverageSmUtil() const { return sm_accum_.value(); }
  double AverageMemUtil() const { return mem_accum_.value(); }

  // Instantaneous memory utilization in [0, 1].
  double InstantMemUtil() const;

  // Cluster-wide training-residency metrics ("device.trainings_added",
  // "device.trainings_removed", gauge "device.active_trainings",
  // "device.overcommit_admissions"). Observational only; survives copies.
  void SetTelemetry(Telemetry* telemetry);

 private:
  int id_;
  double memory_mb_;
  double compute_scale_;
  bool healthy_ = true;
  double slowdown_ = 1.0;
  std::optional<InferenceInstance> inference_;
  std::vector<TrainingInstance> trainings_;
  TimeWeightedMean sm_accum_;
  TimeWeightedMean mem_accum_;
  telemetry::Counter* added_counter_ = nullptr;
  telemetry::Counter* removed_counter_ = nullptr;
  telemetry::Counter* overcommit_counter_ = nullptr;
  telemetry::Gauge* active_trainings_gauge_ = nullptr;
};

// Splits one physical GPU into `num_instances` MIG-style instances, each
// with proportional memory and compute. Ids are assigned sequentially
// starting at `first_id`.
std::vector<GpuDevice> MakeMigInstances(int first_id, int num_instances,
                                        double total_memory_mb = ModelZoo::kGpuMemoryMb);

}  // namespace mudi

#endif  // SRC_GPU_GPU_DEVICE_H_
