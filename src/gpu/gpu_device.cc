#include "src/gpu/gpu_device.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/telemetry/telemetry.h"

namespace mudi {

namespace {
// CUDA context + framework runtime overhead per resident process.
constexpr double kRuntimeOverheadMb = 500.0;
}  // namespace

double InferenceMemoryMb(const InferenceServiceSpec& spec, int batch_size) {
  MUDI_CHECK_GT(batch_size, 0);
  return spec.weights_mb + spec.activation_mb_per_sample * static_cast<double>(batch_size) +
         kRuntimeOverheadMb;
}

double TrainingMemoryMb(const TrainingTaskSpec& spec) {
  return spec.weights_mb * spec.optimizer_state_factor + spec.activation_mb +
         kRuntimeOverheadMb;
}

double SwapSlowdownFactor(const TrainingInstance& training) {
  if (training.mem_required_mb <= 0.0) {
    return 1.0;
  }
  double swapped_frac = training.mem_swapped_mb / training.mem_required_mb;
  // Paged UM access: up to ~2.5x slower when most state lives on the host.
  return 1.0 + 1.5 * swapped_frac;
}

GpuDevice::GpuDevice(int id, double memory_mb, double compute_scale)
    : id_(id), memory_mb_(memory_mb), compute_scale_(compute_scale) {
  MUDI_CHECK_GT(memory_mb, 0.0);
  MUDI_CHECK_GT(compute_scale, 0.0);
  MUDI_CHECK_LE(compute_scale, 1.0);
}

const InferenceInstance& GpuDevice::inference() const {
  MUDI_CHECK(inference_.has_value());
  return *inference_;
}

InferenceInstance& GpuDevice::mutable_inference() {
  MUDI_CHECK(inference_.has_value());
  return *inference_;
}

void GpuDevice::PlaceInference(InferenceInstance instance) {
  MUDI_CHECK(!inference_.has_value());
  MUDI_CHECK_GT(instance.gpu_fraction, 0.0);
  MUDI_CHECK_LE(instance.gpu_fraction, 1.0);
  inference_ = std::move(instance);
}

void GpuDevice::RemoveInference() {
  MUDI_CHECK(inference_.has_value());
  inference_.reset();
}

void GpuDevice::SetTelemetry(Telemetry* telemetry) {
  if (telemetry == nullptr || !telemetry->enabled()) {
    added_counter_ = nullptr;
    removed_counter_ = nullptr;
    overcommit_counter_ = nullptr;
    active_trainings_gauge_ = nullptr;
    return;
  }
  auto& metrics = telemetry->metrics();
  added_counter_ = &metrics.GetCounter("device.trainings_added");
  removed_counter_ = &metrics.GetCounter("device.trainings_removed");
  overcommit_counter_ = &metrics.GetCounter("device.overcommit_admissions");
  active_trainings_gauge_ = &metrics.GetGauge("device.active_trainings");
}

void GpuDevice::AddTraining(TrainingInstance instance) {
  MUDI_CHECK(FindTraining(instance.task_id) == nullptr);
  MUDI_CHECK_GE(instance.gpu_fraction, 0.0);
  trainings_.push_back(std::move(instance));
  if (added_counter_ != nullptr) {
    added_counter_->Increment();
    active_trainings_gauge_->Add(1.0);
    if (MemoryRequiredMb() > memory_mb_) {
      overcommit_counter_->Increment();
    }
  }
}

TrainingInstance GpuDevice::RemoveTraining(int task_id) {
  std::optional<TrainingInstance> out = TryRemoveTraining(task_id);
  MUDI_CHECK(out.has_value());
  return *std::move(out);
}

std::optional<TrainingInstance> GpuDevice::TryRemoveTraining(int task_id) {
  for (size_t i = 0; i < trainings_.size(); ++i) {
    if (trainings_[i].task_id == task_id) {
      TrainingInstance out = std::move(trainings_[i]);
      trainings_.erase(trainings_.begin() + static_cast<long>(i));
      if (removed_counter_ != nullptr) {
        removed_counter_->Increment();
        active_trainings_gauge_->Add(-1.0);
      }
      return out;
    }
  }
  return std::nullopt;
}

void GpuDevice::SetSlowdown(double slowdown) {
  MUDI_CHECK_GE(slowdown, 1.0);
  slowdown_ = slowdown;
}

TrainingInstance* GpuDevice::FindTraining(int task_id) {
  for (auto& t : trainings_) {
    if (t.task_id == task_id) {
      return &t;
    }
  }
  return nullptr;
}

const TrainingInstance* GpuDevice::FindTraining(int task_id) const {
  return const_cast<GpuDevice*>(this)->FindTraining(task_id);
}

size_t GpuDevice::num_active_trainings() const {
  size_t n = 0;
  for (const auto& t : trainings_) {
    if (!t.paused) {
      ++n;
    }
  }
  return n;
}

double GpuDevice::MemoryResidentMb() const {
  double total = 0.0;
  if (inference_.has_value()) {
    total += inference_->mem_required_mb;
  }
  for (const auto& t : trainings_) {
    total += t.mem_resident_mb();
  }
  return total;
}

double GpuDevice::MemoryRequiredMb() const {
  double total = 0.0;
  if (inference_.has_value()) {
    total += inference_->mem_required_mb;
  }
  for (const auto& t : trainings_) {
    total += t.mem_required_mb;
  }
  return total;
}

void GpuDevice::AccumulateUsage(double duration_ms, double sm_util, double mem_util) {
  sm_accum_.Add(sm_util, duration_ms);
  mem_accum_.Add(mem_util, duration_ms);
}

double GpuDevice::InstantMemUtil() const {
  return std::clamp(MemoryResidentMb() / memory_mb_, 0.0, 1.0);
}

std::vector<GpuDevice> MakeMigInstances(int first_id, int num_instances,
                                        double total_memory_mb) {
  MUDI_CHECK_GT(num_instances, 0);
  std::vector<GpuDevice> instances;
  instances.reserve(static_cast<size_t>(num_instances));
  double share = 1.0 / static_cast<double>(num_instances);
  for (int i = 0; i < num_instances; ++i) {
    instances.emplace_back(first_id + i, total_memory_mb * share, share);
  }
  return instances;
}

}  // namespace mudi
