#include "src/gpu/perf_oracle.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>

#include "src/common/check.h"
#include "src/telemetry/telemetry.h"

namespace mudi {

namespace {

// CPU demand one co-located inference service exerts (multi-threaded
// preprocess/tokenize pipelines oversubscribe cores).
constexpr double kInferenceNeighborCpuDemand = 0.5;

// PCIe pressure exerted per co-located inference neighbor (image tensors
// streamed per batch) vs the per-MB/ms rate factor for training loaders.
constexpr double kInferencePciePressure = 0.9;
constexpr double kTrainingPciePressureRate = 0.33;  // per MB/ms of loader traffic

// GPU-side (HBM/L2) pressure exerted per co-located inference neighbor.
constexpr double kInferenceGpuPressure = 1.4;

// Residual improvement of the execute phase beyond the saturation knee,
// producing the shallow second slope k2 of the piece-wise linear curve.
constexpr double kBeyondKneeGain = 0.12;
constexpr double kTrainingBeyondKneeGain = 0.04;

uint64_t HashCombine(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97f4A7C15ull + (h << 6) + (h >> 2);
  return h;
}

double UnitHash(uint64_t h) {
  // splitmix64 finalizer -> [0, 1).
  h += 0x9E3779B97f4A7C15ull;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
  h = h ^ (h >> 31);
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

// Time-shape of a saturating kernel pipeline: hyperbolic below the knee,
// slight residual gain above it. Returns the multiple of the at-knee time.
double SaturatingShape(double g, double g_sat, double beyond_gain) {
  MUDI_CHECK_GT(g, 0.0);
  if (g < g_sat) {
    return g_sat / g;
  }
  double span = std::max(0.05, 1.0 - g_sat);
  return 1.0 - beyond_gain * (g - g_sat) / span;
}

size_t ServiceIndex(const InferenceServiceSpec& service) {
  const auto& all = ModelZoo::InferenceServices();
  for (size_t i = 0; i < all.size(); ++i) {
    if (all[i].name == service.name) {
      return i;
    }
  }
  // Unknown (user-defined) services hash onto a stable pseudo-index.
  return all.size() + (std::hash<std::string>{}(service.name) % 64);
}

}  // namespace

PerfOracle::PerfOracle(uint64_t seed) {
  // Pre-draw affinity projections for a generous number of service slots so
  // user-defined services get stable weights too.
  constexpr size_t kSlots = 128;
  Rng rng(seed);
  affinity_weights_.resize(kSlots);
  affinity_bias_.resize(kSlots);
  for (size_t s = 0; s < kSlots; ++s) {
    Rng service_rng = rng.Fork(s + 1);
    auto& w = affinity_weights_[s];
    w.resize(kNumLayerTypes);
    for (size_t k = 0; k < kNumLayerTypes; ++k) {
      w[k] = service_rng.Uniform(0.1, 1.0);
    }
    affinity_bias_[s] = service_rng.Uniform(-0.12, 0.12);
  }
}

double PerfOracle::PairAffinity(const InferenceServiceSpec& service,
                                const NetworkArchitecture& arch) const {
  size_t slot = ServiceIndex(service) % affinity_weights_.size();
  const auto& w = affinity_weights_[slot];
  auto counts = arch.ToFeatureVector();
  double raw = 0.0;
  double norm = 0.0;
  for (size_t k = 0; k < kNumLayerTypes; ++k) {
    raw += w[k] * std::log1p(counts[k]);
    norm += w[k] * std::log1p(20.0);
  }
  double z = norm > 0.0 ? raw / norm : 0.0;
  double affinity = 0.05 + 0.9 * Sigmoid(10.0 * (z - 0.55 + affinity_bias_[slot]));

  // Deterministic per-pair jitter: idiosyncratic kernel overlap effects that
  // layer counts alone cannot explain (bounds the modeler's achievable
  // accuracy, as on hardware).
  uint64_t h = slot;
  for (size_t k = 0; k < kNumLayerTypes; ++k) {
    h = HashCombine(h, static_cast<uint64_t>(counts[k]));
  }
  affinity += (UnitHash(h) - 0.5) * 0.08;
  return std::clamp(affinity, 0.0, 1.0);
}

double PerfOracle::SaturationFraction(const InferenceServiceSpec& service, int batch) {
  double g = service.saturation_base + service.saturation_per_sample * static_cast<double>(batch);
  return std::clamp(g, 0.10, 1.0);
}

double PerfOracle::CpuContentionFactor(const InferenceServiceSpec& service, double sensitivity,
                                       const std::vector<ColocatedTraining>& training,
                                       size_t other_inference_count) const {
  (void)service;
  double demand_inference =
      kInferenceNeighborCpuDemand * static_cast<double>(other_inference_count);
  double demand_training = 0.0;
  for (const auto& t : training) {
    MUDI_CHECK(t.spec != nullptr);
    demand_training += t.spec->cpu_load;
  }
  return 1.0 + sensitivity * demand_inference + sensitivity * 0.3 * demand_training;
}

InferencePhaseLatency PerfOracle::InferenceBatchLatency(
    const InferenceServiceSpec& service, int batch, double gpu_fraction,
    const std::vector<ColocatedTraining>& training, size_t other_inference_count) const {
  MUDI_CHECK_GT(batch, 0);
  MUDI_CHECK_GT(gpu_fraction, 0.0);
  MUDI_CHECK_LE(gpu_fraction, 1.0);

  InferencePhaseLatency out;
  double b = static_cast<double>(batch);

  // --- preprocess / tokenization phase (CPU-bound, multi-threaded) ---
  // Image pipelines (large PCIe volume) contend hardest with other
  // multi-threaded preprocess pipelines; control-flow-heavy models contend
  // with single-threaded training loaders too.
  bool image_like = service.transfer_ms_per_sample >= 0.1;
  double pre_inf_sens = image_like ? 8.0 : 4.0;
  double pre_train_sens = service.control_flow_fraction * 16.0;
  double demand_inf = kInferenceNeighborCpuDemand * static_cast<double>(other_inference_count);
  double demand_train = 0.0;
  for (const auto& t : training) {
    MUDI_CHECK(t.spec != nullptr);
    demand_train += t.spec->cpu_load;
  }
  double pre_slow = 1.0 + pre_inf_sens * demand_inf + pre_train_sens * demand_train;
  out.preprocess_ms = b * service.preprocess_ms_per_sample * pre_slow;

  // --- PCIe transfer phase ---
  double pcie_pressure = kInferencePciePressure * static_cast<double>(other_inference_count);
  for (const auto& t : training) {
    double mb_per_ms = t.spec->pcie_mb_per_iter / t.spec->iter_ms_full;
    pcie_pressure += kTrainingPciePressureRate * mb_per_ms;
  }
  out.transfer_ms = b * service.transfer_ms_per_sample * (1.0 + pcie_pressure);

  // --- execute phase ---
  double base_exec = b * service.exec_ms_per_sample_full + service.batch_overhead_ms;
  double g_sat = SaturationFraction(service, batch);
  double shape = SaturatingShape(gpu_fraction, g_sat, kBeyondKneeGain);

  // Control-flow (CPU) share stalls under CPU contention; the GPU share
  // stalls under HBM-bandwidth/L2 contention weighted by pair affinity.
  double cf = service.control_flow_fraction;
  double exec_cpu_slow = 1.0 + 6.0 * demand_inf + 2.0 * demand_train;
  double gpu_pressure = kInferenceGpuPressure * static_cast<double>(other_inference_count);
  for (const auto& t : training) {
    double affinity = PairAffinity(service, t.spec->arch);
    double activity = std::min(1.0, t.gpu_fraction / 0.5);
    gpu_pressure += (0.1 + 1.3 * affinity) * activity;
  }
  double exec_gpu_factor = 1.0 + service.mem_bw_intensity * gpu_pressure;
  out.execute_ms = base_exec * (cf * exec_cpu_slow + (1.0 - cf) * shape * exec_gpu_factor);
  return out;
}

InferencePhaseLatency PerfOracle::ObserveInferenceBatchLatency(
    const InferenceServiceSpec& service, int batch, double gpu_fraction,
    const std::vector<ColocatedTraining>& training, Rng& rng,
    size_t other_inference_count) const {
  InferencePhaseLatency latency =
      InferenceBatchLatency(service, batch, gpu_fraction, training, other_inference_count);
  latency.preprocess_ms *= rng.LogNormalFactor(kNoiseSigma);
  latency.transfer_ms *= rng.LogNormalFactor(kNoiseSigma);
  latency.execute_ms *= rng.LogNormalFactor(kNoiseSigma);
  if (preprocess_hist_ != nullptr) {
    preprocess_hist_->Observe(latency.preprocess_ms);
    transfer_hist_->Observe(latency.transfer_ms);
    execute_hist_->Observe(latency.execute_ms);
    inference_total_hist_->Observe(latency.total_ms());
  }
  return latency;
}

void PerfOracle::SetTelemetry(Telemetry* telemetry) {
  if (telemetry == nullptr || !telemetry->enabled()) {
    preprocess_hist_ = nullptr;
    transfer_hist_ = nullptr;
    execute_hist_ = nullptr;
    inference_total_hist_ = nullptr;
    training_iter_hist_ = nullptr;
    return;
  }
  auto& metrics = telemetry->metrics();
  const auto buckets = telemetry::MetricsRegistry::DefaultLatencyBucketsMs();
  preprocess_hist_ = &metrics.GetHistogram("oracle.inference.preprocess_ms", buckets);
  transfer_hist_ = &metrics.GetHistogram("oracle.inference.transfer_ms", buckets);
  execute_hist_ = &metrics.GetHistogram("oracle.inference.execute_ms", buckets);
  inference_total_hist_ = &metrics.GetHistogram("oracle.inference.total_ms", buckets);
  training_iter_hist_ = &metrics.GetHistogram("oracle.training.iter_ms", buckets);
}

double PerfOracle::TrainingIterationMs(const TrainingTaskSpec& task, double gpu_fraction,
                                       const InferenceLoad& inference,
                                       const std::vector<ColocatedTraining>& other_training) const {
  MUDI_CHECK_GT(gpu_fraction, 0.0);
  MUDI_CHECK_LE(gpu_fraction, 1.0);

  double shape = SaturatingShape(gpu_fraction, task.saturation_gpu, kTrainingBeyondKneeGain);

  double inflicted = 0.0;
  double cpu_factor = 1.0;
  if (inference.spec != nullptr) {
    MUDI_CHECK_GT(inference.batch_size, 0);
    double b = static_cast<double>(inference.batch_size);
    double affinity = PairAffinity(*inference.spec, task.arch);

    // GPU-side pressure: the service's kernel duty cycle, amplified by the
    // burstiness of large batches holding SMs/L2 contiguously.
    double gpu_busy_ms_per_s =
        inference.qps * inference.spec->exec_ms_per_sample_full /
        std::max(inference.gpu_fraction, 0.05);
    double duty = std::min(1.0, gpu_busy_ms_per_s / kMsPerSecond);
    double burst = 0.7 + 0.45 * std::sqrt(b / 128.0);
    inflicted += task.mem_bw_intensity * (0.1 + 1.0 * affinity) * duty * burst;

    // PCIe pressure: per-request volume is batch-independent but the
    // per-batch setup cost falls with b — together with the rising burst
    // term this makes training interference non-monotonic in b (§5.3.1).
    double pcie_duty = inference.qps * inference.spec->transfer_ms_per_sample / kMsPerSecond +
                       (inference.qps / b) * 0.5 / kMsPerSecond * 60.0;
    inflicted += 0.35 * std::min(1.2, pcie_duty);

    // Data-loader CPU slowdown from the service's preprocess threads.
    cpu_factor += 0.15 * task.cpu_load / 0.1;
  }
  for (const auto& other : other_training) {
    MUDI_CHECK(other.spec != nullptr);
    double activity = std::min(1.0, other.gpu_fraction / 0.5);
    inflicted += 0.20 * task.mem_bw_intensity * other.spec->mem_bw_intensity * activity;
    cpu_factor += 0.05 * other.spec->cpu_load / 0.1;
  }

  return task.iter_ms_full * shape * (1.0 + inflicted) * cpu_factor;
}

double PerfOracle::ObserveTrainingIterationMs(
    const TrainingTaskSpec& task, double gpu_fraction, const InferenceLoad& inference,
    const std::vector<ColocatedTraining>& other_training, Rng& rng) const {
  double iter = TrainingIterationMs(task, gpu_fraction, inference, other_training) *
                rng.LogNormalFactor(kNoiseSigma);
  if (training_iter_hist_ != nullptr) {
    training_iter_hist_->Observe(iter);
  }
  return iter;
}

}  // namespace mudi
