// Ground-truth GPU performance oracle — the simulated substitute for the
// paper's physical A100 testbed (see DESIGN.md §1 and §3).
//
// The oracle maps (inference service, batch, GPU%, co-located workloads) to
// per-phase latency, and (training task, GPU%, co-located load) to mini-batch
// iteration time. Mudi and the baselines only ever see these observations
// (optionally with multiplicative log-normal noise), never the formulas.
//
// Qualitative behaviours reproduced from the paper's measurements:
//  * Latency vs GPU% saturates at a batch-dependent knee (Fig. 5): steep
//    hyperbolic improvement below g_sat(b), near-flat (small residual slope)
//    above it. A piece-wise linear fit approximates this well but not
//    perfectly — exactly the situation on real hardware.
//  * Inference↔inference co-location suffers heavy CPU contention in the
//    preprocess/tokenize phase and in control-flow-bound execution (Fig. 3);
//    inference↔training contention is mild because training data loading is
//    single-threaded (Fig. 4).
//  * PCIe contention is high between two inference services shipping image
//    tensors (≈1.9×) and mild against training (≈1.16×).
//  * GPU-side (HBM bandwidth / L2) contention between an inference service
//    and a training task is governed by a pair-specific *affinity* that is a
//    fixed nonlinear function of the training task's layer census — the
//    ground truth that the Interference Modeler must learn from architecture
//    features (§4.1.2).
//  * The interference a *training task* suffers from the co-located
//    inference service is non-monotonic in the inference batching size
//    (§5.3.1): PCIe duty falls with b while compute-burst pressure grows,
//    so an interior batch minimizes training iteration time.
#ifndef SRC_GPU_PERF_ORACLE_H_
#define SRC_GPU_PERF_ORACLE_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/simulator.h"
#include "src/workload/models.h"

namespace mudi {

class Telemetry;
namespace telemetry {
class Histogram;
}  // namespace telemetry

// One co-located training task as the oracle sees it.
struct ColocatedTraining {
  const TrainingTaskSpec* spec = nullptr;
  double gpu_fraction = 0.0;  // GPU share allocated to this training task
};

// The inference side's load, as needed to compute the pressure it exerts.
struct InferenceLoad {
  const InferenceServiceSpec* spec = nullptr;
  int batch_size = 0;
  double gpu_fraction = 0.0;
  double qps = 0.0;  // request arrival rate it is absorbing
};

struct InferencePhaseLatency {
  double preprocess_ms = 0.0;
  double transfer_ms = 0.0;
  double execute_ms = 0.0;

  double total_ms() const { return preprocess_ms + transfer_ms + execute_ms; }
};

class PerfOracle {
 public:
  // `seed` fixes the hidden affinity projection; experiments use one oracle
  // instance so ground truth is consistent between profiling and runtime.
  explicit PerfOracle(uint64_t seed = 42);

  // ---- Inference side ----

  // Noise-free per-phase latency of one batch of `batch` requests executed at
  // GPU share `gpu_fraction`, co-located with `training` tasks and
  // `other_inference_count` other inference services (0 except in the Fig. 3
  // motivation experiments).
  InferencePhaseLatency InferenceBatchLatency(
      const InferenceServiceSpec& service, int batch, double gpu_fraction,
      const std::vector<ColocatedTraining>& training,
      size_t other_inference_count = 0) const;

  // Same, with multiplicative log-normal observation noise.
  InferencePhaseLatency ObserveInferenceBatchLatency(
      const InferenceServiceSpec& service, int batch, double gpu_fraction,
      const std::vector<ColocatedTraining>& training, Rng& rng,
      size_t other_inference_count = 0) const;

  // Batch-dependent saturation knee g_sat(b) in (0, 1].
  static double SaturationFraction(const InferenceServiceSpec& service, int batch);

  // ---- Training side ----

  // Noise-free mini-batch iteration time of `task` at share `gpu_fraction`,
  // co-located with `inference` (pass nullptr spec for solo) and
  // `other_training` tasks.
  double TrainingIterationMs(const TrainingTaskSpec& task, double gpu_fraction,
                             const InferenceLoad& inference,
                             const std::vector<ColocatedTraining>& other_training) const;

  double ObserveTrainingIterationMs(const TrainingTaskSpec& task, double gpu_fraction,
                                    const InferenceLoad& inference,
                                    const std::vector<ColocatedTraining>& other_training,
                                    Rng& rng) const;

  // ---- Ground-truth interference structure (tests / Optimal baseline) ----

  // Pair affinity in [0, 1]: the hidden architecture-dependent coefficient
  // scaling GPU-side contention between `service` and a training task with
  // layer census `arch`.
  double PairAffinity(const InferenceServiceSpec& service, const NetworkArchitecture& arch) const;

  // Observation noise sigma (log-normal) used by the Observe* methods.
  static constexpr double kNoiseSigma = 0.04;

  // Per-phase latency sample histograms ("oracle.inference.*_ms",
  // "oracle.training.iter_ms") for every Observe* call. Observational only.
  void SetTelemetry(Telemetry* telemetry);

 private:
  double CpuContentionFactor(const InferenceServiceSpec& service, double sensitivity,
                             const std::vector<ColocatedTraining>& training,
                             size_t other_inference_count) const;

  // Per-service random projection weights over the layer-census features.
  std::vector<std::vector<double>> affinity_weights_;
  std::vector<double> affinity_bias_;

  // Cached registry histograms (stable addresses); null when detached.
  telemetry::Histogram* preprocess_hist_ = nullptr;
  telemetry::Histogram* transfer_hist_ = nullptr;
  telemetry::Histogram* execute_hist_ = nullptr;
  telemetry::Histogram* inference_total_hist_ = nullptr;
  telemetry::Histogram* training_iter_hist_ = nullptr;
};

}  // namespace mudi

#endif  // SRC_GPU_PERF_ORACLE_H_
