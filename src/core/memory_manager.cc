#include "src/core/memory_manager.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/telemetry/telemetry.h"

namespace mudi {

MemoryManager::MemoryManager() : MemoryManager(Options{}) {}

MemoryManager::MemoryManager(Options options) : options_(options) {
  MUDI_CHECK_GT(options_.pcie_mb_per_ms, 0.0);
  MUDI_CHECK_GE(options_.min_resident_fraction, 0.0);
  MUDI_CHECK_LT(options_.min_resident_fraction, 1.0);
}

double MemoryManager::Rebalance(GpuDevice& device, TimeMs now) {
  double transfer_ms = 0.0;

  // Phase 1: swap out while over capacity. Inference memory is pinned; we
  // page out training memory, largest resident working set first so fewer
  // tasks are disturbed.
  double deficit = device.MemoryDeficitMb();
  if (deficit > 0.0) {
    auto& trainings = device.mutable_trainings();
    std::vector<TrainingInstance*> order;
    order.reserve(trainings.size());
    for (auto& t : trainings) {
      order.push_back(&t);
    }
    std::sort(order.begin(), order.end(), [](const TrainingInstance* a,
                                             const TrainingInstance* b) {
      return a->mem_resident_mb() > b->mem_resident_mb();
    });
    for (TrainingInstance* t : order) {
      if (deficit <= 0.0) {
        break;
      }
      double min_resident = options_.min_resident_fraction * t->mem_required_mb;
      double can_release = t->mem_resident_mb() - min_resident;
      if (can_release <= 0.0) {
        continue;
      }
      double mb = std::min(deficit, can_release);
      t->mem_swapped_mb += mb;
      deficit -= mb;
      double ms = mb / options_.pcie_mb_per_ms;
      transfer_ms += ms;
      total_swapped_out_mb_ += mb;
      SwapRecord record{now, device.id(), t->task_id, mb, /*to_host=*/true, ms};
      RecordSwap(record);
      records_.push_back(record);
      TimeMs& busy = transfer_busy_until_[{device.id(), t->task_id}];
      busy = std::max(busy, now + ms);
    }
  }

  // Phase 2: swap back in when there is comfortable headroom.
  double headroom = device.MemoryFreeMb() - options_.swap_in_headroom_mb;
  if (headroom > 0.0) {
    for (auto& t : device.mutable_trainings()) {
      if (headroom <= 0.0) {
        break;
      }
      if (t.mem_swapped_mb <= 0.0) {
        continue;
      }
      double mb = std::min(headroom, t.mem_swapped_mb);
      t.mem_swapped_mb -= mb;
      headroom -= mb;
      double ms = mb / options_.pcie_mb_per_ms;
      transfer_ms += ms;
      SwapRecord record{now, device.id(), t.task_id, mb, /*to_host=*/false, ms};
      RecordSwap(record);
      records_.push_back(record);
      TimeMs& busy = transfer_busy_until_[{device.id(), t.task_id}];
      busy = std::max(busy, now + ms);
    }
  }
  return transfer_ms;
}

Status MemoryManager::Release(GpuDevice& device, int task_id, TimeMs now) {
  TrainingInstance* training = device.FindTraining(task_id);
  if (training == nullptr) {
    return NotFoundError("memory manager: task " + std::to_string(task_id) +
                         " not resident on device " + std::to_string(device.id()));
  }
  auto busy_it = transfer_busy_until_.find({device.id(), task_id});
  bool aborted = busy_it != transfer_busy_until_.end() && now < busy_it->second;
  if (aborted) {
    ++aborted_transfers_;
  }
  if (busy_it != transfer_busy_until_.end()) {
    transfer_busy_until_.erase(busy_it);
  }
  double reclaimed = training->mem_swapped_mb;
  reclaimed_swap_mb_ += reclaimed;
  training->mem_swapped_mb = 0.0;
  if (telemetry_ != nullptr) {
    telemetry_->metrics().GetCounter("memory.releases").Increment();
    if (aborted) {
      telemetry_->metrics().GetCounter("memory.aborted_transfers").Increment();
    }
    if (reclaimed > 0.0) {
      telemetry_->metrics().GetCounter("memory.reclaimed_mb").Increment(reclaimed);
    }
    MUDI_TRACE_INSTANT(telemetry_, "memory", "release", device.id(), now,
                       telemetry::TraceArgs{
                           telemetry::TraceArg::Num("task_id", task_id),
                           telemetry::TraceArg::Num("reclaimed_mb", reclaimed),
                           telemetry::TraceArg::Num("aborted", aborted ? 1.0 : 0.0)});
  }
  return Status::Ok();
}

void MemoryManager::SetTelemetry(Telemetry* telemetry) {
  telemetry_ = (telemetry != nullptr && telemetry->enabled()) ? telemetry : nullptr;
}

void MemoryManager::RecordSwap(const SwapRecord& record) {
  if (telemetry_ == nullptr) {
    return;
  }
  auto& metrics = telemetry_->metrics();
  const char* name = record.to_host ? "swap_out" : "swap_in";
  if (record.to_host) {
    metrics.GetCounter("memory.swaps_out").Increment();
    metrics.GetCounter("memory.swapped_out_mb").Increment(record.mb);
  } else {
    metrics.GetCounter("memory.swaps_in").Increment();
    metrics.GetCounter("memory.swapped_in_mb").Increment(record.mb);
  }
  metrics.GetCounter("memory.transfer_ms").Increment(record.transfer_ms);
  MUDI_TRACE_INSTANT(telemetry_, "memory", name, record.device_id, record.time_ms,
                     telemetry::TraceArgs{
                         telemetry::TraceArg::Num("task_id", record.task_id),
                         telemetry::TraceArg::Num("mb", record.mb),
                         telemetry::TraceArg::Num("transfer_ms", record.transfer_ms)});
}

double MemoryManager::SwapSlowdownFactor(const TrainingInstance& training) {
  // The model itself lives in src/gpu so the decision-trace replay
  // environments can apply it without a src/core dependency.
  return ::mudi::SwapSlowdownFactor(training);
}

}  // namespace mudi
