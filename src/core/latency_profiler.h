// Offline Latency Profiler (paper §4.1.1, module ① of Fig. 6).
//
// Profiles each inference service's P99 batch latency against GPU% under a
// fixed batching size and a fixed co-located training workload, then fits
// the piece-wise linear function of Eq. (1). Profiling is sample-efficient:
// 6 GPU% points per curve (Tab. 2 shows piece-wise linear beats polynomial
// and MLP fitting below 10 samples).
//
// Offline profiling runs before deployment on a profiling GPU, so the
// profiler holds its own PerfOracle reference (observations are noisy
// measurements) — this is NOT runtime ground-truth access.
#ifndef SRC_CORE_LATENCY_PROFILER_H_
#define SRC_CORE_LATENCY_PROFILER_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/gpu/perf_oracle.h"
#include "src/ml/piecewise_linear.h"
#include "src/workload/models.h"

namespace mudi {

// Identifies one profiled latency curve: a service, a batching size, and the
// co-located training mix (type indices, sorted; empty = solo).
struct CurveKey {
  size_t service_index = 0;
  int batch = 0;
  std::vector<size_t> training_types;  // sorted

  bool operator<(const CurveKey& other) const;
};

// One profiled curve plus the raw samples it was fitted from.
struct ProfiledCurve {
  CurveKey key;
  PiecewiseLinearModel model;
  std::vector<double> sample_fractions;
  std::vector<double> sample_latencies;
};

class LatencyProfiler {
 public:
  struct Options {
    // GPU% points measured per curve (subset of the 10–90% grid).
    std::vector<double> sample_fractions{0.1, 0.2, 0.3, 0.5, 0.7, 0.9};
    // Repeated measurements per point; the P99 across repeats is the sample.
    size_t repeats_per_point = 20;
    // Assumed GPU share of the co-located training task while profiling
    // (the remainder of the inference share, split across tasks).
    uint64_t seed = 101;
  };

  LatencyProfiler(const PerfOracle& oracle, Options options);
  explicit LatencyProfiler(const PerfOracle& oracle);

  // Profiles one curve: service × batch × co-located training mix.
  ProfiledCurve ProfileCurve(size_t service_index, int batch,
                             const std::vector<size_t>& training_types);

  // Profiles the full offline grid: every service × ProfilingBatchSizes() ×
  // each single training type in [0, num_training_types). Results are
  // retained and queryable.
  void ProfileAll(size_t num_training_types);

  // Extends the store with multi-training co-location curves (§5.5):
  // every pair (and optionally triple) drawn from the observed types.
  void ProfileMultiTraining(size_t num_training_types, bool include_triples);

  // Stores a curve fitted from *online* measurements (the §7.3 incremental
  // update path: when a service meets a new co-location, Mudi samples its
  // latency and folds the fitted curve into the store).
  void AddMeasuredCurve(const CurveKey& key, std::vector<double> fractions,
                        std::vector<double> latencies);

  // Stores a curve exactly as given — no oracle measurement, no refit. The
  // decision-trace replay path preloads recorded offline curves this way so
  // a replayed run predicts from bit-identical models without re-profiling
  // (total_measurements() stays 0, which is how the replay gate proves the
  // profiler was skipped).
  void InjectCurve(ProfiledCurve curve);

  const std::map<CurveKey, ProfiledCurve>& curves() const { return curves_; }
  const ProfiledCurve* FindCurve(const CurveKey& key) const;

  size_t total_measurements() const { return total_measurements_; }

  // --- persistence ---
  // Offline profiling is the expensive step (hours of GPU time in the real
  // system), so the curve store round-trips through a CSV file:
  //   service,batch,types(+separated),x0,y0,k1,k2,g1;g2;...,l1;l2;...
  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path);

 private:
  const PerfOracle& oracle_;
  Options options_;
  Rng rng_;
  std::map<CurveKey, ProfiledCurve> curves_;
  size_t total_measurements_ = 0;
};

}  // namespace mudi

#endif  // SRC_CORE_LATENCY_PROFILER_H_
