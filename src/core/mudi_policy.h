// MudiPolicy — the complete Mudi system (paper §3–§5) packaged as a
// MultiplexPolicy for the cluster experiment harness.
//
// Composition:
//  * Offline Profiler = LatencyProfiler + InterferenceModeler, run in
//    Initialize() over the observed training-task types (§7.1: the first
//    five of Tab. 3).
//  * Online Multiplexer = InterferencePredictor + DeviceSelector for
//    cluster-wide placement (§5.2).
//  * Local Coordinator = Tuner (adaptive batching + resource scaling,
//    §5.3) driven by Monitor triggers; the Memory Manager runs inside the
//    harness for swap-capable policies (§5.6).
//
// Ablation switches reproduce Fig. 13: cluster_policy=kRandom keeps only
// device-level control; device_policy=kStatic keeps only cluster-wide
// co-location.
#ifndef SRC_CORE_MUDI_POLICY_H_
#define SRC_CORE_MUDI_POLICY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cluster/policy.h"
#include "src/common/rng.h"
#include "src/core/interference_modeler.h"
#include "src/core/latency_profiler.h"
#include "src/core/online_multiplexer.h"
#include "src/core/tuner.h"
#include "src/gpu/perf_oracle.h"

namespace mudi {

class MudiPolicy : public MultiplexPolicy {
 public:
  enum class ClusterPolicy { kSlopeBased, kRandom };
  enum class DevicePolicy { kAdaptive, kStatic };

  struct Options {
    int max_trainings_per_device = 1;
    ClusterPolicy cluster_policy = ClusterPolicy::kSlopeBased;
    DevicePolicy device_policy = DevicePolicy::kAdaptive;
    // Training-task types included in offline profiling.
    size_t observed_training_types = ModelZoo::kNumObservedTrainingTypes;
    Tuner::Options tuner;
    uint64_t seed = 7;
    // Optional explicit display name ("" = derived from the switches).
    std::string display_name;
  };

  // `profiling_oracle` backs the *offline* profiling measurements
  // (pre-deployment profiling GPU); online behaviour only uses env probes.
  MudiPolicy(const PerfOracle& profiling_oracle, Options options);
  MudiPolicy(const PerfOracle& profiling_oracle);

  std::string name() const override;
  void Initialize(SchedulingEnv& env) override;
  std::optional<int> SelectDevice(SchedulingEnv& env, const TrainingTaskInfo& task) override;
  void OnTrainingPlaced(SchedulingEnv& env, int device_id,
                        const TrainingTaskInfo& task) override;
  void OnTrainingCompleted(SchedulingEnv& env, int device_id, int task_id) override;
  void OnQpsChange(SchedulingEnv& env, int device_id) override;
  // Failure handling: a dead device invalidates the predictor's cached
  // interference scores (its profile snapshot no longer describes anything
  // placeable); displaced trainings are re-placed by the harness through the
  // normal SelectDevice path. Recovery re-tunes the restarted replica as
  // soon as its monitor reports measurable load.
  void OnDeviceFailed(SchedulingEnv& env, int device_id,
                      const std::vector<TrainingTaskInfo>& displaced) override;
  void OnDeviceRecovered(SchedulingEnv& env, int device_id) override;
  // Crash-recovery: the reconstructed view may reflect stale configs, so
  // drop every derived cache (interference scores, memoized fits) and let
  // the harness-driven retune sweep re-converge the cluster.
  void OnControlPlaneRestart(SchedulingEnv& env) override;
  int MaxTrainingsPerDevice() const override { return options_.max_trainings_per_device; }
  bool SupportsMemorySwap() const override { return true; }

  // Read access for tests and microscopic benches.
  const LatencyProfiler& profiler() const { return profiler_; }
  const InterferenceModeler& modeler() const { return modeler_; }
  const InterferencePredictor& predictor() const { return *predictor_; }
  const Tuner& tuner() const { return tuner_; }

 private:
  // Training-type mix currently resident on the device.
  static std::vector<size_t> DeviceMix(const GpuDevice& device);
  // Runs the full device-level tuning flow and applies the configuration.
  void TuneDevice(SchedulingEnv& env, int device_id, bool on_placement, int probe_task_id);
  // Static (tuner-disabled) configuration for Fig. 13(a).
  void ApplyStaticConfig(SchedulingEnv& env, int device_id);
  void DistributeTrainingShares(SchedulingEnv& env, int device_id, double inference_fraction);
  // Deferred modeler fit for replay mode: a replayed run preloads recorded
  // curves and predictions, so the (expensive) learner fit only happens if a
  // prediction actually misses the trace.
  void EnsureFittedFromProfiler();

  Options options_;
  LatencyProfiler profiler_;
  InterferenceModeler modeler_;
  std::unique_ptr<InterferencePredictor> predictor_;
  std::unique_ptr<DeviceSelector> selector_;
  Tuner tuner_;
  Rng rng_;
  bool initialized_ = false;
};

}  // namespace mudi

#endif  // SRC_CORE_MUDI_POLICY_H_
