#include "src/core/mudi_policy.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/cluster/replay_hooks.h"
#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/common/wallclock.h"
#include "src/ml/fit_cache.h"
#include "src/perf/perf_collector.h"
#include "src/telemetry/telemetry.h"

namespace mudi {

MudiPolicy::MudiPolicy(const PerfOracle& profiling_oracle, Options options)
    : options_(std::move(options)),
      profiler_(profiling_oracle),
      tuner_(options_.tuner),
      rng_(options_.seed) {
  predictor_ = std::make_unique<InterferencePredictor>(&profiler_, &modeler_);
  DeviceSelector::Constraints constraints;
  constraints.max_trainings_per_device = options_.max_trainings_per_device;
  constraints.allow_memory_overcommit = true;
  selector_ = std::make_unique<DeviceSelector>(predictor_.get(), constraints);
}

MudiPolicy::MudiPolicy(const PerfOracle& profiling_oracle)
    : MudiPolicy(profiling_oracle, Options{}) {}

std::string MudiPolicy::name() const {
  if (!options_.display_name.empty()) {
    return options_.display_name;
  }
  if (options_.cluster_policy == ClusterPolicy::kRandom) {
    return "Mudi-device-only";
  }
  if (options_.device_policy == DevicePolicy::kStatic) {
    return "Mudi-cluster-only";
  }
  if (options_.max_trainings_per_device > 1) {
    return "Mudi-more";
  }
  return "Mudi";
}

void MudiPolicy::EnsureFittedFromProfiler() {
  if (modeler_.fitted()) {
    return;
  }
  modeler_.AddSamplesFromProfiler(profiler_);
  modeler_.Fit();
}

void MudiPolicy::Initialize(SchedulingEnv& env) {
  if (initialized_) {
    return;
  }
  if (replay::PredictionReplay* source = env.replay()) {
    // Replay mode: the recorded offline curves substitute for profiling and
    // the recorded predictions substitute for the learner, so neither the
    // oracle sweep nor the fit runs here (profiler_.total_measurements()
    // stays 0 — the replay gate asserts on it). The learner fit is deferred
    // to the first prediction that misses the trace, if any.
    for (const replay::TraceCurve& recorded : source->curves()) {
      ProfiledCurve curve;
      curve.key.service_index = recorded.service_index;
      curve.key.batch = recorded.batch;
      curve.key.training_types.assign(recorded.training_types.begin(),
                                      recorded.training_types.end());
      curve.model.k1 = recorded.k1;
      curve.model.k2 = recorded.k2;
      curve.model.x0 = recorded.x0;
      curve.model.y0 = recorded.y0;
      curve.sample_fractions = recorded.sample_fractions;
      curve.sample_latencies = recorded.sample_latencies;
      profiler_.InjectCurve(std::move(curve));
    }
    predictor_->SetReplay(source, [this] { EnsureFittedFromProfiler(); });
    initialized_ = true;
    MUDI_LOG(Info) << name() << ": replaying " << profiler_.curves().size()
                   << " recorded curves, profiling skipped";
    return;
  }
  {
    perf::PerfRegion region(env.perf(), "mudi.offline_profile");
    profiler_.ProfileAll(options_.observed_training_types);
    if (options_.max_trainings_per_device > 1) {
      profiler_.ProfileMultiTraining(options_.observed_training_types,
                                     options_.max_trainings_per_device > 2);
    }
  }
  {
    // The piece-wise-linear refit over all profiled curves — one of the
    // expected hot spots the self-attribution is built to expose.
    perf::PerfRegion region(env.perf(), "mudi.fit");
    modeler_.AddSamplesFromProfiler(profiler_);
    modeler_.Fit();
  }
  if (env.perf() != nullptr && env.perf()->enabled()) {
    // Snapshot-style, observe-only: how much of the fit the FitCache absorbed.
    env.perf()->SetCounter("mudi.fit_shards_cached", modeler_.last_fit_cached());
    env.perf()->SetCounter("mudi.fit_shards_computed", modeler_.last_fit_computed());
  }
  if (replay::DecisionSink* recorder = env.recorder()) {
    // Dump the *offline* curve store into the trace so a replayed run can
    // preload it. Online refreshes (AddMeasuredCurve) happen after this and
    // are re-derived identically during a fidelity replay from the recorded
    // probe observations, so they are deliberately not recorded.
    for (const auto& [key, curve] : profiler_.curves()) {
      replay::TraceCurve out;
      out.service_index = static_cast<uint32_t>(key.service_index);
      out.batch = key.batch;
      out.training_types.assign(key.training_types.begin(), key.training_types.end());
      out.k1 = curve.model.k1;
      out.k2 = curve.model.k2;
      out.x0 = curve.model.x0;
      out.y0 = curve.model.y0;
      out.sample_fractions = curve.sample_fractions;
      out.sample_latencies = curve.sample_latencies;
      recorder->RecordCurve(out);
    }
    predictor_->SetRecorder(recorder);
  }
  initialized_ = true;
  MUDI_LOG(Info) << name() << ": offline profiling done, "
                 << profiler_.curves().size() << " curves, "
                 << profiler_.total_measurements() << " measurements";
}

std::vector<size_t> MudiPolicy::DeviceMix(const GpuDevice& device) {
  std::vector<size_t> mix;
  mix.reserve(device.trainings().size());
  for (const auto& t : device.trainings()) {
    mix.push_back(t.type_index);
  }
  return mix;
}

std::optional<int> MudiPolicy::SelectDevice(SchedulingEnv& env, const TrainingTaskInfo& task) {
  MUDI_CHECK(initialized_);
  WallTimer timer;
  std::optional<int> choice;
  if (options_.cluster_policy == ClusterPolicy::kSlopeBased) {
    choice = selector_->Select(env, task);
  } else {
    // Ablation (Fig. 13b): uniform-random among eligible devices.
    std::vector<int> eligible;
    for (const GpuDevice& device : env.devices()) {
      if (selector_->Eligible(env, device, task)) {
        eligible.push_back(device.id());
      }
    }
    if (!eligible.empty()) {
      choice = eligible[static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int64_t>(eligible.size()) - 1))];
    }
  }
  RecordPlacementOverhead(timer.ElapsedMs());
  return choice;
}

void MudiPolicy::DistributeTrainingShares(SchedulingEnv& env, int device_id,
                                          double inference_fraction) {
  const GpuDevice& device = env.device(device_id);
  size_t active = device.num_active_trainings();
  if (active == 0) {
    return;
  }
  // §5.5: the unassigned portion of the GPU is split evenly across the
  // co-located training tasks.
  double share = std::max(0.02, (1.0 - inference_fraction) / static_cast<double>(active));
  for (const auto& t : device.trainings()) {
    if (!t.paused) {
      env.ApplyTrainingFraction(device_id, t.task_id, share);
    }
  }
}

void MudiPolicy::TuneDevice(SchedulingEnv& env, int device_id, bool on_placement,
                            int probe_task_id) {
  perf::PerfRegion tune_region(env.perf(), "mudi.tune_device");
  tuner_.SetPerf(env.perf());
  const GpuDevice& device = env.device(device_id);
  MUDI_CHECK(device.has_inference());
  size_t service_index = device.inference().service_index;
  const InferenceServiceSpec& service = ModelZoo::InferenceServices()[service_index];
  double qps = env.MeasuredQps(device_id);
  std::vector<size_t> mix = DeviceMix(device);

  auto curve_provider = [&](int batch) {
    return predictor_->PredictCurve(service_index, mix, batch);
  };

  // Initial GPU% for the service: the maximum predicted cutoff across
  // batching sizes (§5.3.2) — generous while the batching search runs.
  double init_fraction = tuner_.options().min_fraction;
  for (int b : ProfilingBatchSizes()) {
    init_fraction = std::max(init_fraction, curve_provider(b).x0);
  }
  init_fraction = std::min(init_fraction, tuner_.options().max_fraction);

  // The BO objective: observed training mini-batch time for a candidate
  // inference batching size (Training Agent feedback). With no training
  // resident (pure rescale), the objective is flat.
  size_t active = std::max<size_t>(1, device.num_active_trainings());
  double train_share = std::max(0.05, (1.0 - init_fraction) / static_cast<double>(active));
  auto objective = [&](int batch) {
    if (probe_task_id < 0) {
      return 1.0;
    }
    return env.ProbeTrainingIterMs(device_id, probe_task_id, train_share, batch, init_fraction);
  };

  int current_batch =
      device.inference().batch_size > 0 ? device.inference().batch_size : ProfilingBatchSizes()[0];
  Tuner::Result result;
  {
    perf::PerfRegion region(env.perf(), "mudi.gp_lcb");
    result = on_placement
                 ? tuner_.TuneOnPlacement(curve_provider, objective, ProfilingBatchSizes(), qps,
                                          service.slo_ms)
                 : tuner_.TuneOnQpsChange(curve_provider, objective, ProfilingBatchSizes(),
                                          current_batch, qps, service.slo_ms);
  }
  RecordTuningIterations(result.bo_iterations);

  // Resume hysteresis: un-pausing preempted training requires feasibility
  // with extra load margin, or the device thrashes pause/resume around the
  // feasibility boundary while the request rate fluctuates.
  bool any_paused = false;
  for (const auto& t : device.trainings()) {
    any_paused |= t.paused;
  }
  if (result.feasible && any_paused &&
      !tuner_.BatchFeasible(curve_provider(result.batch), result.batch, qps * 1.08,
                            service.slo_ms)) {
    result.feasible = false;
  }

  Telemetry* telemetry = env.telemetry();

  if (!result.feasible && device.trainings().size() > 1) {
    // The full mix is infeasible, but §5.3.2's "until suitable resources
    // become available" applies per task, not per device: a subset of the
    // co-located trainings may still multiplex within the SLO (all-or-nothing
    // resume latches packed devices into a permanent pause otherwise). Search
    // admission-ordered prefixes for the largest feasible subset, resume
    // exactly those tasks, and keep the rest preempted.
    std::vector<int> task_ids;
    std::vector<size_t> types;
    std::vector<bool> was_paused;
    for (const auto& t : device.trainings()) {
      task_ids.push_back(t.task_id);
      types.push_back(t.type_index);
      was_paused.push_back(t.paused);
    }
    for (size_t keep = task_ids.size(); keep-- > 0;) {
      std::vector<size_t> submix(types.begin(), types.begin() + static_cast<long>(keep));
      auto sub_provider = [&](int batch) {
        return predictor_->PredictCurve(service_index, submix, batch);
      };
      Tuner::Result sub;
      {
        perf::PerfRegion region(env.perf(), "mudi.gp_lcb");
        sub = tuner_.TuneOnQpsChange(sub_provider, objective, ProfilingBatchSizes(),
                                     current_batch, qps, service.slo_ms);
      }
      RecordTuningIterations(sub.bo_iterations);
      if (!sub.feasible) {
        continue;
      }
      bool resumes_paused = false;
      for (size_t i = 0; i < keep; ++i) {
        resumes_paused |= was_paused[i];
      }
      if (resumes_paused && !tuner_.BatchFeasible(sub_provider(sub.batch), sub.batch, qps * 1.08,
                                                  service.slo_ms)) {
        continue;  // resume hysteresis, as for the full mix
      }
      for (size_t i = 0; i < task_ids.size(); ++i) {
        env.SetTrainingPaused(device_id, task_ids[i], i >= keep);
      }
      env.ApplyInferenceConfig(device_id, sub.batch, sub.inference_fraction);
      DistributeTrainingShares(env, device_id, sub.inference_fraction);
      if (telemetry != nullptr && telemetry->enabled()) {
        telemetry->metrics().GetCounter("policy.partial_resumes").Increment();
        MUDI_TRACE_INSTANT(telemetry, "tuning", "tune_partial_resume", device_id, env.Now(),
                           telemetry::TraceArgs{
                               telemetry::TraceArg::Num("qps", qps),
                               telemetry::TraceArg::Num("batch", sub.batch),
                               telemetry::TraceArg::Num("fraction", sub.inference_fraction),
                               telemetry::TraceArg::Num("kept", static_cast<double>(keep)),
                               telemetry::TraceArg::Num(
                                   "paused", static_cast<double>(task_ids.size() - keep))});
      }
      return;
    }
  }

  if (!result.feasible) {
    // §5.3.2: bursty load beyond what multiplexing can absorb — preempt the
    // training tasks and give the service the maximum partition.
    size_t paused_now = 0;
    for (const auto& t : device.trainings()) {
      if (!t.paused) {
        ++paused_now;
      }
      env.SetTrainingPaused(device_id, t.task_id, true);
    }
    env.ApplyInferenceConfig(device_id, current_batch, tuner_.options().max_fraction);
    if (telemetry != nullptr && telemetry->enabled()) {
      auto& metrics = telemetry->metrics();
      metrics.GetCounter("policy.tunes_infeasible").Increment();
      metrics.GetCounter("policy.preempt_pauses").Increment(static_cast<double>(paused_now));
      MUDI_TRACE_INSTANT(telemetry, "tuning", "tune_infeasible", device_id, env.Now(),
                         telemetry::TraceArgs{
                             telemetry::TraceArg::Num("qps", qps),
                             telemetry::TraceArg::Num("batch", current_batch),
                             telemetry::TraceArg::Num("bo_iters",
                                                      static_cast<double>(result.bo_iterations)),
                             telemetry::TraceArg::Num("paused", static_cast<double>(paused_now))});
    }
    return;
  }

  // Feasible again: resume anything we paused earlier.
  for (const auto& t : device.trainings()) {
    if (t.paused) {
      env.SetTrainingPaused(device_id, t.task_id, false);
    }
  }
  // §7.3 incremental sampling: the prediction may extrapolate poorly to an
  // unseen co-location, so verify the chosen configuration with live probes
  // and escalate the partition while the measured latency misses the
  // planning budget. The samples also refresh the curve store, so repeat
  // co-locations predict from measurements instead of extrapolation.
  double budget = PlanningLatencyBudgetMs(
      result.batch, std::max(qps, 1.0) * tuner_.options().load_headroom, service.slo_ms);
  std::vector<double> probe_fractions, probe_latencies;
  for (int round = 0; round < 5; ++round) {
    double measured =
        env.ProbeInferenceLatencyMs(device_id, result.batch, result.inference_fraction);
    probe_fractions.push_back(result.inference_fraction);
    probe_latencies.push_back(measured);
    if (measured <= budget || result.inference_fraction >= tuner_.options().max_fraction) {
      break;
    }
    result.inference_fraction = std::min(tuner_.options().max_fraction,
                                         result.inference_fraction * 1.25 + 0.02);
  }
  if (probe_fractions.size() >= 4) {
    // Enough spread to refresh the stored curve for this (mix, batch).
    profiler_.AddMeasuredCurve(CurveKey{service_index, result.batch, mix},
                               probe_fractions, probe_latencies);
    predictor_->InvalidateCache();
  }

  env.ApplyInferenceConfig(device_id, result.batch, result.inference_fraction);
  DistributeTrainingShares(env, device_id, result.inference_fraction);

  if (telemetry != nullptr && telemetry->enabled()) {
    telemetry->metrics().GetCounter("policy.tunes").Increment();
    MUDI_TRACE_INSTANT(telemetry, "tuning", on_placement ? "tune_on_placement" : "tune_on_qps",
                       device_id, env.Now(),
                       telemetry::TraceArgs{
                           telemetry::TraceArg::Num("qps", qps),
                           telemetry::TraceArg::Num("batch", result.batch),
                           telemetry::TraceArg::Num("fraction", result.inference_fraction),
                           telemetry::TraceArg::Num("bo_iters",
                                                    static_cast<double>(result.bo_iterations))});
  }
}

void MudiPolicy::ApplyStaticConfig(SchedulingEnv& env, int device_id) {
  // Fig. 13(a) ablation: cluster-wide placement only. Pick the largest
  // batching size whose predicted curve meets the SLO at the cutoff point,
  // set Δ to that cutoff, and never retune.
  const GpuDevice& device = env.device(device_id);
  size_t service_index = device.inference().service_index;
  const InferenceServiceSpec& service = ModelZoo::InferenceServices()[service_index];
  double qps = env.MeasuredQps(device_id);
  std::vector<size_t> mix = DeviceMix(device);

  const auto& batches = ProfilingBatchSizes();
  int chosen_batch = batches.front();
  double chosen_fraction = tuner_.options().max_fraction;
  for (auto it = batches.rbegin(); it != batches.rend(); ++it) {
    PiecewiseLinearModel curve = predictor_->PredictCurve(service_index, mix, *it);
    auto frac = tuner_.MinimalFraction(curve, *it, qps, service.slo_ms);
    if (frac.has_value()) {
      chosen_batch = *it;
      chosen_fraction = std::clamp(std::max(*frac, curve.x0) * 1.05,
                                   tuner_.options().min_fraction,
                                   tuner_.options().max_fraction);
      break;
    }
  }
  env.ApplyInferenceConfig(device_id, chosen_batch, chosen_fraction);
  DistributeTrainingShares(env, device_id, chosen_fraction);
}

void MudiPolicy::OnTrainingPlaced(SchedulingEnv& env, int device_id,
                                  const TrainingTaskInfo& task) {
  if (options_.device_policy == DevicePolicy::kStatic) {
    ApplyStaticConfig(env, device_id);
    return;
  }
  TuneDevice(env, device_id, /*on_placement=*/true, task.task_id);
}

void MudiPolicy::OnTrainingCompleted(SchedulingEnv& env, int device_id, int task_id) {
  (void)task_id;
  const GpuDevice& device = env.device(device_id);
  if (!device.has_inference()) {
    return;
  }
  // Reclaim the departed task's share for the remaining residents.
  DistributeTrainingShares(env, device_id, device.inference().gpu_fraction);
}

void MudiPolicy::OnDeviceFailed(SchedulingEnv& env, int device_id,
                                const std::vector<TrainingTaskInfo>& displaced) {
  (void)device_id;
  // Cached interference scores were computed against a cluster snapshot that
  // included the dead device; drop them so displaced tasks are re-placed
  // against fresh state.
  predictor_->InvalidateCache();
  if (env.telemetry() != nullptr && env.telemetry()->enabled()) {
    env.telemetry()->metrics().GetCounter("policy.device_failures").Increment();
    env.telemetry()->metrics().GetCounter("policy.trainings_displaced")
        .Increment(static_cast<double>(displaced.size()));
  }
}

void MudiPolicy::OnDeviceRecovered(SchedulingEnv& env, int device_id) {
  predictor_->InvalidateCache();
  if (options_.device_policy == DevicePolicy::kStatic) {
    ApplyStaticConfig(env, device_id);
    return;
  }
  // The restarted replica boots with the initial config; re-tune right away
  // if the monitor already sees load, otherwise the next monitor trigger
  // (first observation on a fresh monitor) handles it.
  if (env.MeasuredQps(device_id) > 0.0) {
    OnQpsChange(env, device_id);
  }
}

void MudiPolicy::OnControlPlaneRestart(SchedulingEnv& env) {
  // The scheduler was down: configs it believed applied may have been lost,
  // and the recovery scan may have served stale rows. Every derived cache is
  // suspect — interference scores against an unknown cluster snapshot and
  // memoized fits alike. Drop them all; re-tunes after restart then recompute
  // against observed state.
  predictor_->InvalidateCache();
  FitCache::Global().Clear();
  if (env.telemetry() != nullptr && env.telemetry()->enabled()) {
    env.telemetry()->metrics().GetCounter("policy.control_plane_restarts").Increment();
  }
}

void MudiPolicy::OnQpsChange(SchedulingEnv& env, int device_id) {
  if (options_.device_policy == DevicePolicy::kStatic) {
    return;
  }
  const GpuDevice& device = env.device(device_id);
  if (!device.has_inference()) {
    return;
  }
  int probe_task = -1;
  for (const auto& t : device.trainings()) {
    if (!t.paused) {
      probe_task = t.task_id;
      break;
    }
  }
  TuneDevice(env, device_id, /*on_placement=*/false, probe_task);
}

}  // namespace mudi
