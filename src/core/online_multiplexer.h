// Online Multiplexer (paper §3.2 modules ③–④, §4.2, §5.2).
//
// InterferencePredictor: predicts the piece-wise linear latency curve of an
// inference service under a hypothetical co-location — using the exact
// offline-profiled curve when that co-location mix was profiled, and the
// architecture-feature learner (InterferenceModeler) otherwise, which is how
// previously unobserved training tasks are handled.
//
// DeviceSelector: assigns an incoming training task to the device whose
// hosted service would see the smallest average slope magnitude across the
// batching-size set {16, 32, 64, 128, 256, 512} (§5.2) — less interference
// AND less sensitivity to resource shrinkage, so more GPU can go to training.
#ifndef SRC_CORE_ONLINE_MULTIPLEXER_H_
#define SRC_CORE_ONLINE_MULTIPLEXER_H_

#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "src/cluster/policy.h"
#include "src/core/interference_modeler.h"
#include "src/core/latency_profiler.h"
#include "src/ml/piecewise_linear.h"

namespace mudi {

namespace replay {
class DecisionSink;
class PredictionReplay;
}  // namespace replay

class InterferencePredictor {
 public:
  InterferencePredictor(const LatencyProfiler* profiler, const InterferenceModeler* modeler);

  // Decision-trace hooks (src/cluster/replay_hooks.h interfaces; the
  // concrete recorder/source live in src/replay, above this layer). The sink
  // is observe-only: every learner-backed prediction is appended to the
  // trace. The replay source substitutes recorded predictions for live
  // modeler calls; `ensure_fitted` is invoked before the first live fallback
  // so a replay run can defer the expensive modeler fit until (unless) a
  // prediction actually misses.
  void SetRecorder(replay::DecisionSink* recorder) { recorder_ = recorder; }
  void SetReplay(replay::PredictionReplay* replay, std::function<void()> ensure_fitted) {
    replay_ = replay;
    ensure_fitted_ = std::move(ensure_fitted);
  }

  // Latency curve of service `service_index` at batching size `batch` when
  // co-located with training tasks of the given type indices (sorted or
  // not). Exact profiled curves take precedence; unseen mixes fall back to
  // the learner over the cumulative layer census.
  PiecewiseLinearModel PredictCurve(size_t service_index, std::vector<size_t> training_types,
                                    int batch) const;

  // §5.2 score: mean of |(k1+k2)/2| across the profiling batch sizes.
  // Lower is a better co-location.
  double InterferenceScore(size_t service_index,
                           const std::vector<size_t>& training_types) const;

  // Drops memoized scores (call after incremental modeler refits).
  void InvalidateCache() { score_cache_.clear(); }

 private:
  const LatencyProfiler* profiler_;
  const InterferenceModeler* modeler_;
  replay::DecisionSink* recorder_ = nullptr;
  replay::PredictionReplay* replay_ = nullptr;
  std::function<void()> ensure_fitted_;
  // Score memoization: the score is a pure function of (service, mix), and
  // cluster-wide selection evaluates the same handful of mixes across
  // hundreds of devices.
  mutable std::map<std::pair<size_t, std::vector<size_t>>, double> score_cache_;
};

class DeviceSelector {
 public:
  struct Constraints {
    int max_trainings_per_device = 1;
    bool allow_memory_overcommit = true;  // Mudi swaps; set false without swap
    // Even with swap, overcommit beyond this bound thrashes (paged training
    // runs ~2.5x slower); such devices are ineligible and the task queues.
    double max_overcommit_mb = 10240.0;
  };

  DeviceSelector(const InterferencePredictor* predictor, Constraints constraints);

  // Device with the smallest interference score for the incoming task among
  // eligible devices; nullopt when no device is eligible.
  std::optional<int> Select(SchedulingEnv& env, const TrainingTaskInfo& task) const;

  // Eligibility: capacity for one more training task (+ memory fit when
  // overcommit is disallowed).
  bool Eligible(const SchedulingEnv& env, const GpuDevice& device,
                const TrainingTaskInfo& task) const;

 private:
  const InterferencePredictor* predictor_;
  Constraints constraints_;
};

}  // namespace mudi

#endif  // SRC_CORE_ONLINE_MULTIPLEXER_H_
