// Interference Modeler (paper §4.1.2, module ② of Fig. 6).
//
// Learns, per inference service, the mapping from (co-located training
// network architecture, inference batching size) to the parameters of the
// piece-wise linear latency function: Y = [k1, k2, Δ0, l0]. One lightweight
// model is trained per output metric, and the best model family (RF, SVR,
// kNN, Linear, MLP) is selected per metric by cross-validation. The model is
// incrementally updatable as new co-locations are profiled (Fig. 12).
#ifndef SRC_CORE_INTERFERENCE_MODELER_H_
#define SRC_CORE_INTERFERENCE_MODELER_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "src/core/latency_profiler.h"
#include "src/ml/model_selection.h"
#include "src/ml/piecewise_linear.h"
#include "src/workload/layers.h"

namespace mudi {

// The four predicted curve parameters.
enum class CurveParam : size_t { kK1 = 0, kK2, kCutoffX, kCutoffY };
inline constexpr size_t kNumCurveParams = 4;
const char* CurveParamName(CurveParam param);

class InterferenceModeler {
 public:
  InterferenceModeler();

  // Adds a profiled curve as a training sample for its service. The feature
  // is the cumulative layer census of the curve's co-located training tasks
  // plus the batching size; solo curves (no training) are skipped.
  void AddSample(const ProfiledCurve& curve);
  void AddSamplesFromProfiler(const LatencyProfiler& profiler);

  // (Re)trains the per-service, per-parameter learners; call after adding
  // samples. `folds` controls the model-selection cross-validation. Fits are
  // memoized process-wide (FitCache) and fanned out deterministically
  // (FitPool) — see SelectBestModelsCached.
  void Fit(size_t folds = 5);

  // Shard accounting for the most recent Fit(): how many (service, param)
  // selections were served from the cache vs computed fresh. Observational.
  size_t last_fit_cached() const { return last_fit_cached_; }
  size_t last_fit_computed() const { return last_fit_computed_; }

  // Predicts the piece-wise linear latency curve for `service_index` when
  // co-located with training task(s) of cumulative architecture `arch` at
  // batching size `batch`. Requires Fit() first.
  PiecewiseLinearModel Predict(size_t service_index, const NetworkArchitecture& arch,
                               int batch) const;

  bool fitted() const { return fitted_; }
  size_t num_samples(size_t service_index) const;

  // Name of the selected model family for (service, param) — Fig. 11 labels.
  std::string SelectedModelName(size_t service_index, CurveParam param) const;

  // Feature encoding shared with tests: 11 layer counts + log2(batch).
  static std::vector<double> EncodeFeatures(const NetworkArchitecture& arch, int batch);

 private:
  struct ServiceModels {
    std::vector<std::vector<double>> x;
    std::array<std::vector<double>, kNumCurveParams> y;
    // Shared because fitted models are immutable (Predict is const) and may
    // be held jointly by this modeler and the process-global FitCache.
    std::array<std::shared_ptr<const Regressor>, kNumCurveParams> model;
    std::array<std::string, kNumCurveParams> model_name;
  };

  std::vector<ServiceModels> per_service_;
  bool fitted_ = false;
  size_t last_fit_cached_ = 0;
  size_t last_fit_computed_ = 0;
};

}  // namespace mudi

#endif  // SRC_CORE_INTERFERENCE_MODELER_H_
