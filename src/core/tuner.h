// Device-level Tuner (paper §5.3, module ⑥ of Fig. 6).
//
// Two-phase decoupled tuning:
//  * Adaptive batching (§5.3.1): GP-LCB Bayesian optimization over the
//    candidate batching sizes, minimizing the observed training mini-batch
//    time subject to the SLO constraint evaluated through the predicted
//    piece-wise linear latency curve.
//  * Dynamic resource scaling (§5.3.2): the minimal GPU% satisfying Eq. (4),
//      Δ = argmin Δ  s.t.  (W/b)·P(b, Δ, Ψ) ≤ SLO,
//    solved by direct inversion of the piece-wise linear curve, with a 10%
//    safety margin on top of the solver output.
//
// On placement the order is: initialize Δ to the max cutoff across batches →
// adaptive batching → minimal Δ. On a QPS-change trigger: rescale Δ first,
// then adaptive batching, then a final rescale. If no configuration is
// feasible the Tuner reports infeasible and the caller preemptively pauses
// the co-located training (§5.3.2).
#ifndef SRC_CORE_TUNER_H_
#define SRC_CORE_TUNER_H_

#include <functional>
#include <optional>

#include "src/ml/bayesopt.h"
#include "src/ml/piecewise_linear.h"

namespace mudi {

class Tuner {
 public:
  struct Options {
    // Safety factor applied to the Eq. (4) solution (paper: 10% larger).
    double slo_margin = 1.1;
    // Plan for this multiple of the measured load. The GPU%-side margin adds
    // no throughput headroom for services whose curve is flat beyond the
    // knee (e.g. YOLOS), so fluctuation tolerance must come from the budget.
    double load_headroom = 1.10;
    double min_fraction = 0.10;
    double max_fraction = 0.90;
    BayesOptOptions bo;

    Options() { bo.max_iterations = 25; }
  };

  struct Result {
    bool feasible = false;
    int batch = 0;
    double inference_fraction = 0.0;
    size_t bo_iterations = 0;
    // Wall time spent probing configurations (sum of observed mini-batch
    // times during BO) — the paper's "tuning overhead".
    double tuning_time_ms = 0.0;
  };

  // Predicted latency curve for a batching size under the current
  // co-location (from the Online Multiplexer's Interference Predictor).
  using CurveProvider = std::function<PiecewiseLinearModel(int batch)>;
  // Observed training mini-batch time when the inference side runs with a
  // candidate batching size (Training Agent feedback).
  using IterObjective = std::function<double(int batch)>;

  Tuner();
  explicit Tuner(Options options);

  // §5.3.1 flow after a placement decision.
  Result TuneOnPlacement(const CurveProvider& curves, const IterObjective& objective,
                         const std::vector<int>& batch_candidates, double qps,
                         double slo_ms) const;

  // §5.3.2 flow on a QPS-change trigger. `current_batch` seeds the first
  // rescale before adaptive batching re-runs.
  Result TuneOnQpsChange(const CurveProvider& curves, const IterObjective& objective,
                         const std::vector<int>& batch_candidates, int current_batch,
                         double qps, double slo_ms) const;

  // Eq. (4): minimal feasible Δ for one batch, before the safety margin;
  // nullopt when even max_fraction misses the SLO.
  std::optional<double> MinimalFraction(const PiecewiseLinearModel& curve, int batch, double qps,
                                        double slo_ms) const;

  // SLO feasibility of (batch) under `curve` at the best possible Δ.
  bool BatchFeasible(const PiecewiseLinearModel& curve, int batch, double qps,
                     double slo_ms) const;

  const Options& options() const { return options_; }

  // Routes the BO's fine-grained self-profiling regions (kernel build,
  // Cholesky, acquisition scan) to the run's collector. Observe-only; the
  // policy re-points it per tuning call because the collector belongs to the
  // harness, not the tuner.
  void SetPerf(perf::PerfCollector* perf) { options_.bo.perf = perf; }

 private:
  double MarginedFraction(double raw) const;

  Options options_;
};

}  // namespace mudi

#endif  // SRC_CORE_TUNER_H_
