#include "src/core/interference_modeler.h"

#include <cmath>

#include "src/common/check.h"
#include "src/workload/models.h"

namespace mudi {

const char* CurveParamName(CurveParam param) {
  switch (param) {
    case CurveParam::kK1:
      return "k1";
    case CurveParam::kK2:
      return "k2";
    case CurveParam::kCutoffX:
      return "delta0";
    case CurveParam::kCutoffY:
      return "l0";
  }
  return "?";
}

InterferenceModeler::InterferenceModeler()
    : per_service_(ModelZoo::InferenceServices().size()) {}

std::vector<double> InterferenceModeler::EncodeFeatures(const NetworkArchitecture& arch,
                                                        int batch) {
  std::vector<double> features = arch.ToFeatureVector();
  features.push_back(std::log2(static_cast<double>(batch)));
  return features;
}

void InterferenceModeler::AddSample(const ProfiledCurve& curve) {
  if (curve.key.training_types.empty()) {
    return;  // solo curves carry no interference signal
  }
  MUDI_CHECK_LT(curve.key.service_index, per_service_.size());
  const auto& tasks = ModelZoo::TrainingTasks();
  NetworkArchitecture cumulative;
  for (size_t type : curve.key.training_types) {
    MUDI_CHECK_LT(type, tasks.size());
    cumulative = cumulative.Plus(tasks[type].arch);
  }
  ServiceModels& sm = per_service_[curve.key.service_index];
  sm.x.push_back(EncodeFeatures(cumulative, curve.key.batch));
  // Slopes and levels span orders of magnitude across batching sizes, so
  // the learners regress log-magnitudes (slopes are <= 0 by construction);
  // Predict() inverts the transform.
  sm.y[static_cast<size_t>(CurveParam::kK1)].push_back(
      std::log(std::max(-curve.model.k1, 1e-3)));
  sm.y[static_cast<size_t>(CurveParam::kK2)].push_back(
      std::log(std::max(-curve.model.k2, 1e-3)));
  sm.y[static_cast<size_t>(CurveParam::kCutoffX)].push_back(curve.model.x0);
  sm.y[static_cast<size_t>(CurveParam::kCutoffY)].push_back(
      std::log(std::max(curve.model.y0, 1e-3)));
  fitted_ = false;
}

void InterferenceModeler::AddSamplesFromProfiler(const LatencyProfiler& profiler) {
  for (const auto& [key, curve] : profiler.curves()) {
    AddSample(curve);
  }
}

void InterferenceModeler::Fit(size_t folds) {
  auto zoo = DefaultRegressorZoo();
  // Flatten every (service, param) selection into one batch so the cache
  // lookup and the worker-pool fan-out see all shards at once. Slot order is
  // the service/param iteration order, which fixes the reduction order.
  std::vector<FitTask> tasks;
  std::vector<std::pair<ServiceModels*, size_t>> slots;
  for (auto& sm : per_service_) {
    if (sm.x.size() < 4) {
      continue;  // not enough co-location samples for this service yet
    }
    for (size_t p = 0; p < kNumCurveParams; ++p) {
      tasks.push_back(FitTask{&sm.x, &sm.y[p], folds});
      slots.emplace_back(&sm, p);
    }
  }
  std::vector<SharedSelectionResult> results = SelectBestModelsCached(zoo, tasks);
  last_fit_cached_ = 0;
  last_fit_computed_ = 0;
  for (size_t i = 0; i < slots.size(); ++i) {
    slots[i].first->model[slots[i].second] = results[i].model;
    slots[i].first->model_name[slots[i].second] = results[i].model_name;
    if (results[i].from_cache) {
      ++last_fit_cached_;
    } else {
      ++last_fit_computed_;
    }
  }
  fitted_ = true;
}

PiecewiseLinearModel InterferenceModeler::Predict(size_t service_index,
                                                  const NetworkArchitecture& arch,
                                                  int batch) const {
  MUDI_CHECK(fitted_);
  MUDI_CHECK_LT(service_index, per_service_.size());
  const ServiceModels& sm = per_service_[service_index];
  MUDI_CHECK(sm.model[0] != nullptr);
  auto features = EncodeFeatures(arch, batch);
  PiecewiseLinearModel model;
  model.k1 = -std::exp(sm.model[static_cast<size_t>(CurveParam::kK1)]->Predict(features));
  model.k2 = -std::exp(sm.model[static_cast<size_t>(CurveParam::kK2)]->Predict(features));
  model.x0 = sm.model[static_cast<size_t>(CurveParam::kCutoffX)]->Predict(features);
  model.y0 = std::exp(sm.model[static_cast<size_t>(CurveParam::kCutoffY)]->Predict(features));
  // Structural sanity: the cutoff must stay inside (0, 1); slopes of a
  // latency-vs-resources curve are non-positive.
  if (model.x0 < 0.05) {
    model.x0 = 0.05;
  } else if (model.x0 > 0.95) {
    model.x0 = 0.95;
  }
  if (model.k1 > 0.0) {
    model.k1 = 0.0;
  }
  if (model.k2 > 0.0) {
    model.k2 = 0.0;
  }
  return model;
}

size_t InterferenceModeler::num_samples(size_t service_index) const {
  MUDI_CHECK_LT(service_index, per_service_.size());
  return per_service_[service_index].x.size();
}

std::string InterferenceModeler::SelectedModelName(size_t service_index,
                                                   CurveParam param) const {
  MUDI_CHECK_LT(service_index, per_service_.size());
  return per_service_[service_index].model_name[static_cast<size_t>(param)];
}

}  // namespace mudi
