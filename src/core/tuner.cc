#include "src/core/tuner.h"

#include <algorithm>
#include <cmath>

#include "src/cluster/policy.h"
#include "src/common/check.h"

namespace mudi {

Tuner::Tuner() : Tuner(Options{}) {}

Tuner::Tuner(Options options) : options_(options) {
  MUDI_CHECK_GE(options_.slo_margin, 1.0);
  MUDI_CHECK_GT(options_.min_fraction, 0.0);
  MUDI_CHECK_LE(options_.max_fraction, 1.0);
  MUDI_CHECK_LT(options_.min_fraction, options_.max_fraction);
}

std::optional<double> Tuner::MinimalFraction(const PiecewiseLinearModel& curve, int batch,
                                             double qps, double slo_ms) const {
  MUDI_CHECK_GT(batch, 0);
  if (qps <= 0.0) {
    // No load: the service only needs the floor allocation.
    return options_.min_fraction;
  }
  // (W/b)·P(b, Δ) <= SLO with the queue-stability cap (see policy.h).
  double target = PlanningLatencyBudgetMs(batch, qps * options_.load_headroom, slo_ms);
  return curve.MinXForValueAtMost(target, options_.min_fraction, options_.max_fraction);
}

bool Tuner::BatchFeasible(const PiecewiseLinearModel& curve, int batch, double qps,
                          double slo_ms) const {
  return MinimalFraction(curve, batch, qps, slo_ms).has_value();
}

double Tuner::MarginedFraction(double raw) const {
  return std::clamp(raw * options_.slo_margin, options_.min_fraction, options_.max_fraction);
}

Tuner::Result Tuner::TuneOnPlacement(const CurveProvider& curves, const IterObjective& objective,
                                     const std::vector<int>& batch_candidates, double qps,
                                     double slo_ms) const {
  MUDI_CHECK(!batch_candidates.empty());
  Result result;

  // Adaptive batching: GP-LCB over feasible batch candidates, objective is
  // the observed training mini-batch time (§5.3.1).
  std::vector<double> candidates(batch_candidates.begin(), batch_candidates.end());
  GpLcbOptimizer optimizer(candidates, options_.bo);
  double probe_time = 0.0;
  BayesOptResult bo = optimizer.Minimize(
      [&](double b) {
        double iter_ms = objective(static_cast<int>(b));
        probe_time += iter_ms;  // each probe runs one mini-batch
        return iter_ms;
      },
      [&](double b) {
        int batch = static_cast<int>(b);
        return BatchFeasible(curves(batch), batch, qps, slo_ms);
      });
  result.bo_iterations = bo.iterations_used;
  result.tuning_time_ms = probe_time;
  if (!bo.best_candidate.has_value()) {
    result.feasible = false;
    return result;
  }
  result.batch = static_cast<int>(*bo.best_candidate);

  // Dynamic resource scaling: minimal Δ for the chosen batch + 10% margin.
  auto min_frac = MinimalFraction(curves(result.batch), result.batch, qps, slo_ms);
  MUDI_CHECK(min_frac.has_value());  // feasibility guaranteed by the BO filter
  result.inference_fraction = MarginedFraction(*min_frac);
  result.feasible = true;
  return result;
}

Tuner::Result Tuner::TuneOnQpsChange(const CurveProvider& curves, const IterObjective& objective,
                                     const std::vector<int>& batch_candidates, int current_batch,
                                     double qps, double slo_ms) const {
  // First rescale at the current batch so the service is protected while the
  // batching search runs (§5.3.2 order).
  auto immediate = MinimalFraction(curves(current_batch), current_batch, qps, slo_ms);
  Result result = TuneOnPlacement(curves, objective, batch_candidates, qps, slo_ms);
  if (!result.feasible && immediate.has_value()) {
    // The search found nothing better, but the current batch still works.
    result.feasible = true;
    result.batch = current_batch;
    result.inference_fraction = MarginedFraction(*immediate);
  }
  return result;
}

}  // namespace mudi
