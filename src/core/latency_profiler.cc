#include "src/core/latency_profiler.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/common/check.h"
#include "src/common/stats.h"

namespace mudi {

bool CurveKey::operator<(const CurveKey& other) const {
  if (service_index != other.service_index) {
    return service_index < other.service_index;
  }
  if (batch != other.batch) {
    return batch < other.batch;
  }
  return training_types < other.training_types;
}

LatencyProfiler::LatencyProfiler(const PerfOracle& oracle, Options options)
    : oracle_(oracle), options_(std::move(options)), rng_(options_.seed) {
  MUDI_CHECK_GE(options_.sample_fractions.size(), 4u);
  MUDI_CHECK_GT(options_.repeats_per_point, 0u);
}

LatencyProfiler::LatencyProfiler(const PerfOracle& oracle)
    : LatencyProfiler(oracle, Options{}) {}

ProfiledCurve LatencyProfiler::ProfileCurve(size_t service_index, int batch,
                                            const std::vector<size_t>& training_types) {
  const auto& services = ModelZoo::InferenceServices();
  const auto& tasks = ModelZoo::TrainingTasks();
  MUDI_CHECK_LT(service_index, services.size());
  const InferenceServiceSpec& service = services[service_index];

  ProfiledCurve curve;
  curve.key.service_index = service_index;
  curve.key.batch = batch;
  curve.key.training_types = training_types;
  std::sort(curve.key.training_types.begin(), curve.key.training_types.end());

  for (double g : options_.sample_fractions) {
    // Co-located training tasks share the remainder of the GPU evenly while
    // the profiling run holds the inference share at g.
    std::vector<ColocatedTraining> colocated;
    if (!training_types.empty()) {
      double train_share = std::max(0.05, (1.0 - g) / static_cast<double>(training_types.size()));
      for (size_t type : training_types) {
        MUDI_CHECK_LT(type, tasks.size());
        colocated.push_back(ColocatedTraining{&tasks[type], train_share});
      }
    }
    std::vector<double> repeats;
    repeats.reserve(options_.repeats_per_point);
    for (size_t r = 0; r < options_.repeats_per_point; ++r) {
      repeats.push_back(
          oracle_.ObserveInferenceBatchLatency(service, batch, g, colocated, rng_).total_ms());
      ++total_measurements_;
    }
    curve.sample_fractions.push_back(g);
    curve.sample_latencies.push_back(Percentile(std::move(repeats), 99.0));
  }
  curve.model = FitPiecewiseLinear(curve.sample_fractions, curve.sample_latencies);
  return curve;
}

void LatencyProfiler::ProfileAll(size_t num_training_types) {
  const auto& services = ModelZoo::InferenceServices();
  MUDI_CHECK_LE(num_training_types, ModelZoo::TrainingTasks().size());
  for (size_t s = 0; s < services.size(); ++s) {
    for (int b : ProfilingBatchSizes()) {
      // Solo curve: interference-free baseline.
      ProfiledCurve solo = ProfileCurve(s, b, {});
      curves_[solo.key] = solo;
      for (size_t type = 0; type < num_training_types; ++type) {
        ProfiledCurve curve = ProfileCurve(s, b, {type});
        curves_[curve.key] = curve;
      }
    }
  }
}

void LatencyProfiler::ProfileMultiTraining(size_t num_training_types, bool include_triples) {
  const auto& services = ModelZoo::InferenceServices();
  for (size_t s = 0; s < services.size(); ++s) {
    for (int b : ProfilingBatchSizes()) {
      for (size_t t1 = 0; t1 < num_training_types; ++t1) {
        for (size_t t2 = t1; t2 < num_training_types; ++t2) {
          ProfiledCurve curve = ProfileCurve(s, b, {t1, t2});
          curves_[curve.key] = curve;
          if (include_triples) {
            for (size_t t3 = t2; t3 < num_training_types; ++t3) {
              ProfiledCurve triple = ProfileCurve(s, b, {t1, t2, t3});
              curves_[triple.key] = triple;
            }
          }
        }
      }
    }
  }
}

void LatencyProfiler::AddMeasuredCurve(const CurveKey& key, std::vector<double> fractions,
                                       std::vector<double> latencies) {
  MUDI_CHECK_EQ(fractions.size(), latencies.size());
  ProfiledCurve curve;
  curve.key = key;
  std::sort(curve.key.training_types.begin(), curve.key.training_types.end());
  curve.sample_fractions = std::move(fractions);
  curve.sample_latencies = std::move(latencies);
  curve.model = FitPiecewiseLinear(curve.sample_fractions, curve.sample_latencies);
  curves_[curve.key] = std::move(curve);
}

void LatencyProfiler::InjectCurve(ProfiledCurve curve) {
  std::sort(curve.key.training_types.begin(), curve.key.training_types.end());
  curves_[curve.key] = std::move(curve);
}

namespace {

std::string JoinDoubles(const std::vector<double>& values, char sep) {
  std::ostringstream os;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      os << sep;
    }
    os << values[i];
  }
  return os.str();
}

bool SplitDoubles(const std::string& text, char sep, std::vector<double>* out) {
  out->clear();
  if (text.empty()) {
    return true;
  }
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, sep)) {
    char* end = nullptr;
    double v = std::strtod(item.c_str(), &end);
    if (end == item.c_str()) {
      return false;
    }
    out->push_back(v);
  }
  return true;
}

}  // namespace

Status LatencyProfiler::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.good()) {
    return InvalidArgumentError("cannot open for writing: " + path);
  }
  out << "service,batch,types,x0,y0,k1,k2,fractions,latencies\n";
  for (const auto& [key, curve] : curves_) {
    std::vector<double> types(key.training_types.begin(), key.training_types.end());
    out << key.service_index << ',' << key.batch << ',' << JoinDoubles(types, '+') << ','
        << curve.model.x0 << ',' << curve.model.y0 << ',' << curve.model.k1 << ','
        << curve.model.k2 << ',' << JoinDoubles(curve.sample_fractions, ';') << ','
        << JoinDoubles(curve.sample_latencies, ';') << '\n';
  }
  return Status::Ok();
}

Status LatencyProfiler::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    return NotFoundError("cannot open: " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return InvalidArgumentError("empty profile file: " + path);
  }
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    std::vector<std::string> fields;
    std::stringstream ss(line);
    std::string field;
    while (std::getline(ss, field, ',')) {
      fields.push_back(field);
    }
    if (fields.size() != 9) {
      return InvalidArgumentError("bad field count at line " + std::to_string(line_no));
    }
    ProfiledCurve curve;
    curve.key.service_index = static_cast<size_t>(std::stoul(fields[0]));
    curve.key.batch = std::stoi(fields[1]);
    std::vector<double> types;
    if (!SplitDoubles(fields[2], '+', &types)) {
      return InvalidArgumentError("bad types at line " + std::to_string(line_no));
    }
    for (double t : types) {
      curve.key.training_types.push_back(static_cast<size_t>(t));
    }
    curve.model.x0 = std::stod(fields[3]);
    curve.model.y0 = std::stod(fields[4]);
    curve.model.k1 = std::stod(fields[5]);
    curve.model.k2 = std::stod(fields[6]);
    if (!SplitDoubles(fields[7], ';', &curve.sample_fractions) ||
        !SplitDoubles(fields[8], ';', &curve.sample_latencies) ||
        curve.sample_fractions.size() != curve.sample_latencies.size()) {
      return InvalidArgumentError("bad samples at line " + std::to_string(line_no));
    }
    curves_[curve.key] = std::move(curve);
  }
  return Status::Ok();
}

const ProfiledCurve* LatencyProfiler::FindCurve(const CurveKey& key) const {
  auto it = curves_.find(key);
  return it == curves_.end() ? nullptr : &it->second;
}

}  // namespace mudi
