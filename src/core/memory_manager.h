// GPU Memory Manager (paper §5.6, module ⑧ of Fig. 6).
//
// Models the unified-memory middleware: a shared host/device pool where the
// inference service's allocations are pinned device-side and training-task
// memory is demand-swapped to the host when device memory is insufficient
// (e.g. the Tuner raised the inference batching size during a burst). When
// headroom returns, training memory migrates back. Transfers cost PCIe time
// and swapped-out training state slows iterations (paged access over UM).
#ifndef SRC_CORE_MEMORY_MANAGER_H_
#define SRC_CORE_MEMORY_MANAGER_H_

#include <map>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/gpu/gpu_device.h"
#include "src/sim/simulator.h"

namespace mudi {

class Telemetry;

struct SwapRecord {
  TimeMs time_ms = 0.0;
  int device_id = -1;
  int task_id = -1;
  double mb = 0.0;
  bool to_host = false;  // true: device → host; false: host → device
  double transfer_ms = 0.0;
};

class MemoryManager {
 public:
  struct Options {
    // Effective PCIe bandwidth for UM page migration.
    double pcie_mb_per_ms = 12.0;
    // Keep at least this fraction of a training task's memory resident
    // (weights stay on device; only activations/optimizer state page out).
    double min_resident_fraction = 0.15;
    // Free-memory headroom required before swapping training memory back.
    double swap_in_headroom_mb = 1024.0;
  };

  MemoryManager();
  explicit MemoryManager(Options options);

  // Brings `device` to a consistent state: swaps training memory to the host
  // while the device is over capacity (inference has priority), and back to
  // the device when headroom allows. Returns total PCIe transfer time of the
  // operations performed; the caller charges it to the affected tasks.
  double Rebalance(GpuDevice& device, TimeMs now);

  // Iteration-time slowdown factor (>= 1) for a training instance given its
  // current swap state: paged access over UM stalls compute.
  static double SwapSlowdownFactor(const TrainingInstance& training);

  // Drops all manager state for `task_id` on `device`: host-swapped pages are
  // reclaimed and a PCIe transfer still in flight for the task (one issued at
  // time t completes at t + transfer_ms) is aborted and counted. Call when a
  // task completes or its device fails, before removing the instance.
  // Returns NotFoundError when the task is not resident on `device` — never
  // admitted, already removed, or a double release.
  Status Release(GpuDevice& device, int task_id, TimeMs now);

  const std::vector<SwapRecord>& records() const { return records_; }
  double total_swapped_out_mb() const { return total_swapped_out_mb_; }
  size_t aborted_transfers() const { return aborted_transfers_; }
  double reclaimed_swap_mb() const { return reclaimed_swap_mb_; }

  // Emits "memory/swap_out" / "memory/swap_in" instant events on the affected
  // device's trace lane and maintains "memory.*" counters. Observational only.
  void SetTelemetry(Telemetry* telemetry);

 private:
  void RecordSwap(const SwapRecord& record);

  Options options_;
  std::vector<SwapRecord> records_;
  double total_swapped_out_mb_ = 0.0;
  size_t aborted_transfers_ = 0;
  double reclaimed_swap_mb_ = 0.0;
  // (device_id, task_id) -> virtual time the task's last PCIe transfer lands.
  std::map<std::pair<int, int>, TimeMs> transfer_busy_until_;
  Telemetry* telemetry_ = nullptr;
};

}  // namespace mudi

#endif  // SRC_CORE_MEMORY_MANAGER_H_
