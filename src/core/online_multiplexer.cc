#include "src/core/online_multiplexer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/cluster/replay_hooks.h"
#include "src/common/check.h"
#include "src/workload/models.h"

namespace mudi {

InterferencePredictor::InterferencePredictor(const LatencyProfiler* profiler,
                                             const InterferenceModeler* modeler)
    : profiler_(profiler), modeler_(modeler) {
  MUDI_CHECK(profiler_ != nullptr);
  MUDI_CHECK(modeler_ != nullptr);
}

PiecewiseLinearModel InterferencePredictor::PredictCurve(size_t service_index,
                                                         std::vector<size_t> training_types,
                                                         int batch) const {
  std::sort(training_types.begin(), training_types.end());
  CurveKey key{service_index, batch, training_types};
  if (const ProfiledCurve* curve = profiler_->FindCurve(key)) {
    return curve->model;
  }
  std::vector<uint32_t> mix32;
  if (replay_ != nullptr || recorder_ != nullptr) {
    mix32.reserve(training_types.size());
    for (size_t type : training_types) {
      mix32.push_back(static_cast<uint32_t>(type));
    }
  }
  if (replay_ != nullptr) {
    if (auto recorded =
            replay_->TakePrediction(static_cast<uint32_t>(service_index), batch, mix32)) {
      PiecewiseLinearModel model;
      model.k1 = recorded->k1;
      model.k2 = recorded->k2;
      model.x0 = recorded->x0;
      model.y0 = recorded->y0;
      return model;
    }
    // A mix the recorded run never predicted: fall through to the live
    // learner, fitting it lazily on this first miss.
    if (ensure_fitted_) {
      ensure_fitted_();
    }
  }
  // Unseen mix: learner over the cumulative architecture (§4.2, §5.5).
  const auto& tasks = ModelZoo::TrainingTasks();
  NetworkArchitecture cumulative;
  for (size_t type : training_types) {
    MUDI_CHECK_LT(type, tasks.size());
    cumulative = cumulative.Plus(tasks[type].arch);
  }
  PiecewiseLinearModel model = modeler_->Predict(service_index, cumulative, batch);
  if (recorder_ != nullptr) {
    recorder_->RecordPrediction(static_cast<uint32_t>(service_index), batch, mix32, model.k1,
                                model.k2, model.x0, model.y0);
  }
  return model;
}

double InterferencePredictor::InterferenceScore(
    size_t service_index, const std::vector<size_t>& training_types) const {
  std::vector<size_t> sorted_types = training_types;
  std::sort(sorted_types.begin(), sorted_types.end());
  auto key = std::make_pair(service_index, sorted_types);
  auto it = score_cache_.find(key);
  if (it != score_cache_.end()) {
    return it->second;
  }
  const auto& batches = ProfilingBatchSizes();
  double sum = 0.0;
  for (int b : batches) {
    PiecewiseLinearModel curve = PredictCurve(service_index, sorted_types, b);
    sum += std::abs(curve.AverageSlope());
  }
  double score = sum / static_cast<double>(batches.size());
  score_cache_.emplace(std::move(key), score);
  return score;
}

DeviceSelector::DeviceSelector(const InterferencePredictor* predictor, Constraints constraints)
    : predictor_(predictor), constraints_(constraints) {
  MUDI_CHECK(predictor_ != nullptr);
  MUDI_CHECK_GT(constraints_.max_trainings_per_device, 0);
}

bool DeviceSelector::Eligible(const SchedulingEnv& env, const GpuDevice& device,
                              const TrainingTaskInfo& task) const {
  (void)env;  // kept for interface symmetry with Select
  if (!device.healthy() || !device.has_inference()) {
    return false;
  }
  if (device.trainings().size() >=
      static_cast<size_t>(constraints_.max_trainings_per_device)) {
    return false;
  }
  double projected = device.MemoryRequiredMb() + TrainingMemoryMb(*task.spec);
  double overcommit = projected - device.memory_mb();
  if (!constraints_.allow_memory_overcommit && overcommit > 0.0) {
    return false;
  }
  if (overcommit > constraints_.max_overcommit_mb) {
    return false;  // beyond what the Memory Manager can absorb sensibly
  }
  return true;
}

std::optional<int> DeviceSelector::Select(SchedulingEnv& env,
                                          const TrainingTaskInfo& task) const {
  double best_score = std::numeric_limits<double>::infinity();
  std::optional<int> best_device;
  replay::DecisionSink* recorder = env.recorder();
  if (recorder != nullptr && !recorder->decision_open()) {
    recorder = nullptr;
  }
  for (const GpuDevice& device : env.devices()) {
    if (!Eligible(env, device, task)) {
      continue;
    }
    std::vector<size_t> mix;
    mix.reserve(device.trainings().size() + 1);
    for (const auto& t : device.trainings()) {
      mix.push_back(t.type_index);
    }
    mix.push_back(task.type_index);
    double score = predictor_->InterferenceScore(device.inference().service_index, mix);
    // Light tie-break: prefer devices with fewer residents so load spreads.
    score *= 1.0 + 0.05 * static_cast<double>(device.trainings().size());
    // Memory-pressure penalty: overcommit is allowed (the Memory Manager
    // swaps), but paged training iterations are up to ~2.5x slower, so a
    // device whose memory would overflow is a much worse co-location.
    double projected = device.MemoryRequiredMb() + TrainingMemoryMb(*task.spec);
    double overflow_mb = std::max(0.0, projected - device.memory_mb());
    score *= 1.0 + overflow_mb / 10000.0;
    if (recorder != nullptr) {
      recorder->AddCandidate(device.id(), score);
    }
    if (score < best_score) {
      best_score = score;
      best_device = device.id();
    }
  }
  return best_device;
}

}  // namespace mudi
