// Lightweight CHECK macros for invariant enforcement.
//
// These are always-on (release builds included): a failed check aborts the
// process after printing the failing condition and location. Simulation and
// scheduling code uses them to guard internal invariants; user-facing input
// validation should return Status instead (see src/common/status.h).
#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace mudi {

[[noreturn]] inline void CheckFailed(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, message.c_str());
  std::fflush(stderr);
  std::abort();
}

namespace check_internal {

template <typename A, typename B>
std::string FormatBinary(const char* expr, const A& a, const B& b) {
  std::ostringstream os;
  os << expr << " (" << a << " vs " << b << ")";
  return os.str();
}

}  // namespace check_internal

}  // namespace mudi

#define MUDI_CHECK(cond)                                           \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::mudi::CheckFailed(__FILE__, __LINE__, #cond);              \
    }                                                              \
  } while (0)

#define MUDI_CHECK_OP(op, a, b)                                                             \
  do {                                                                                      \
    if (!((a)op(b))) {                                                                      \
      ::mudi::CheckFailed(__FILE__, __LINE__,                                               \
                          ::mudi::check_internal::FormatBinary(#a " " #op " " #b, a, b));   \
    }                                                                                       \
  } while (0)

#define MUDI_CHECK_EQ(a, b) MUDI_CHECK_OP(==, a, b)
#define MUDI_CHECK_NE(a, b) MUDI_CHECK_OP(!=, a, b)
#define MUDI_CHECK_LT(a, b) MUDI_CHECK_OP(<, a, b)
#define MUDI_CHECK_LE(a, b) MUDI_CHECK_OP(<=, a, b)
#define MUDI_CHECK_GT(a, b) MUDI_CHECK_OP(>, a, b)
#define MUDI_CHECK_GE(a, b) MUDI_CHECK_OP(>=, a, b)

#endif  // SRC_COMMON_CHECK_H_
