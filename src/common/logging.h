// Leveled logging with a process-global minimum severity.
//
// Usage: MUDI_LOG(Info) << "device " << id << " selected";
// The stream is flushed (with newline) when the temporary Logger dies.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace mudi {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  // Suppresses all logging when used as the minimum level.
  kNone = 4,
};

// Process-global log threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace log_internal {

class Logger {
 public:
  Logger(LogLevel level, const char* file, int line);
  ~Logger();

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  template <typename T>
  Logger& operator<<(const T& value) {
    if (enabled_) {
      stream_ << value;
    }
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal

}  // namespace mudi

#define MUDI_LOG(severity) \
  ::mudi::log_internal::Logger(::mudi::LogLevel::k##severity, __FILE__, __LINE__)

#endif  // SRC_COMMON_LOGGING_H_
