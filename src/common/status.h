// Minimal Status / StatusOr error-propagation types.
//
// Recoverable errors (bad user input, infeasible configurations) flow through
// Status/StatusOr; programming errors abort via MUDI_CHECK. This keeps the hot
// simulation paths exception-free while still giving callers structured errors.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/common/check.h"

namespace mudi {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kResourceExhausted,
  kInfeasible,
  kInternal,
  kUnavailable,
};

// Human-readable name for a StatusCode, e.g. "INVALID_ARGUMENT".
const char* StatusCodeName(StatusCode code);

// [[nodiscard]] makes the compiler (and the -Werror-style warning gate in
// scripts/check.sh) reject silently dropped error results; mudi_lint's
// mudi-status check covers the same invariant in uncompiled code paths.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "CODE: message".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
inline Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
inline Status InfeasibleError(std::string message) {
  return Status(StatusCode::kInfeasible, std::move(message));
}
inline Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
// A transiently unreachable dependency (e.g. a partitioned KvStore); the
// caller may retry through src/sim/retry.h.
inline Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}

// Value-or-error carrier. Accessing value() on an error status aborts.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    MUDI_CHECK(!status_.ok());
  }
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::Ok()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    MUDI_CHECK(ok());
    return *value_;
  }
  T& value() & {
    MUDI_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    MUDI_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mudi

#define MUDI_RETURN_IF_ERROR(expr)       \
  do {                                   \
    ::mudi::Status _status = (expr);     \
    if (!_status.ok()) {                 \
      return _status;                    \
    }                                    \
  } while (0)

// Aborts (with the status message) if `expr` is not OK. For call sites where
// failure is a programming error, not a recoverable condition.
#define MUDI_CHECK_OK(expr)                                            \
  do {                                                                 \
    ::mudi::Status _status = (expr);                                   \
    if (!_status.ok()) {                                               \
      ::mudi::CheckFailed(__FILE__, __LINE__,                          \
                          #expr " returned " + _status.ToString());    \
    }                                                                  \
  } while (0)

#endif  // SRC_COMMON_STATUS_H_
