#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

#include "src/common/thread_annotations.h"

namespace mudi {

namespace {

// Log-level filter only — never read by simulation logic, so a shard that
// disagrees with its siblings can change verbosity but never a result bit.
MUDI_SHARD_SHARED("log verbosity only; never feeds back into results");
MUDI_GUARDED_STATE("relaxed level reads/writes; no ordering required");
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

namespace log_internal {

Logger::Logger(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_min_level.load()), level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line << "] ";
  }
}

Logger::~Logger() {
  if (enabled_) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
  }
}

}  // namespace log_internal

}  // namespace mudi
