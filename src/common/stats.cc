#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace mudi {

double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) {
    return 0.0;
  }
  double mean = Mean(values);
  double sq = 0.0;
  for (double v : values) {
    sq += (v - mean) * (v - mean);
  }
  return std::sqrt(sq / static_cast<double>(values.size()));
}

double PercentileSorted(const std::vector<double>& sorted, double p) {
  MUDI_CHECK(!sorted.empty());
  MUDI_CHECK_GE(p, 0.0);
  MUDI_CHECK_LE(p, 100.0);
  if (sorted.size() == 1) {
    return sorted[0];
  }
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Percentile(std::vector<double> values, double p) {
  MUDI_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  return PercentileSorted(values, p);
}

std::vector<CdfPoint> EmpiricalCdf(std::vector<double> values, size_t num_points) {
  std::vector<CdfPoint> cdf;
  if (values.empty()) {
    return cdf;
  }
  std::sort(values.begin(), values.end());
  num_points = std::max<size_t>(num_points, 2);
  cdf.reserve(num_points);
  for (size_t i = 0; i < num_points; ++i) {
    double frac = static_cast<double>(i) / static_cast<double>(num_points - 1);
    size_t idx = std::min(values.size() - 1,
                          static_cast<size_t>(frac * static_cast<double>(values.size() - 1)));
    cdf.push_back({values[idx], static_cast<double>(idx + 1) / static_cast<double>(values.size())});
  }
  return cdf;
}

Ewma::Ewma(double alpha) : alpha_(alpha) {
  MUDI_CHECK_GT(alpha, 0.0);
  MUDI_CHECK_LE(alpha, 1.0);
}

void Ewma::Add(double value) {
  if (!has_value_) {
    value_ = value;
    has_value_ = true;
  } else {
    value_ = alpha_ * value + (1.0 - alpha_) * value_;
  }
}

void Ewma::Reset() {
  value_ = 0.0;
  has_value_ = false;
}

SlidingWindow::SlidingWindow(size_t capacity) : capacity_(capacity) {
  MUDI_CHECK_GT(capacity, 0u);
}

void SlidingWindow::Add(double value) {
  if (values_.size() == capacity_) {
    values_.pop_front();
  }
  values_.push_back(value);
}

void SlidingWindow::Clear() { values_.clear(); }

double SlidingWindow::Mean() const {
  if (values_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values_) {
    sum += v;
  }
  return sum / static_cast<double>(values_.size());
}

double SlidingWindow::Percentile(double p) const {
  MUDI_CHECK(!values_.empty());
  std::vector<double> copy(values_.begin(), values_.end());
  return ::mudi::Percentile(std::move(copy), p);
}

void TimeWeightedMean::Add(double value, double duration) {
  MUDI_CHECK_GE(duration, 0.0);
  weighted_sum_ += value * duration;
  total_duration_ += duration;
}

double TimeWeightedMean::value() const {
  if (total_duration_ <= 0.0) {
    return 0.0;
  }
  return weighted_sum_ / total_duration_;
}

Histogram::Histogram(double lo, double hi, size_t num_buckets)
    : lo_(lo), hi_(hi), counts_(num_buckets, 0) {
  MUDI_CHECK_LT(lo, hi);
  MUDI_CHECK_GT(num_buckets, 0u);
}

void Histogram::Add(double value) {
  double frac = (value - lo_) / (hi_ - lo_);
  auto idx = static_cast<int64_t>(frac * static_cast<double>(counts_.size()));
  idx = std::clamp<int64_t>(idx, 0, static_cast<int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(idx)];
  ++total_;
}

double Histogram::BucketLow(size_t i) const {
  MUDI_CHECK_LT(i, counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::BucketHigh(size_t i) const {
  MUDI_CHECK_LT(i, counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) / static_cast<double>(counts_.size());
}

double Histogram::CumulativeFraction(size_t i) const {
  MUDI_CHECK_LT(i, counts_.size());
  if (total_ == 0) {
    return 0.0;
  }
  size_t cum = 0;
  for (size_t j = 0; j <= i; ++j) {
    cum += counts_[j];
  }
  return static_cast<double>(cum) / static_cast<double>(total_);
}

}  // namespace mudi
