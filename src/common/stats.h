// Statistics utilities shared across the simulator, the schedulers, and the
// experiment harness: percentiles, CDFs, running means, EWMA, histograms.
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <deque>
#include <vector>

namespace mudi {

// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& values);

// Population standard deviation; 0 for fewer than 2 values.
double StdDev(const std::vector<double>& values);

// Linear-interpolated percentile, p in [0, 100]. Copies and sorts internally.
double Percentile(std::vector<double> values, double p);

// Percentile over data the caller has already sorted ascending.
double PercentileSorted(const std::vector<double>& sorted, double p);

// Empirical CDF evaluated at a fixed number of points, for plotting/reporting.
struct CdfPoint {
  double value = 0.0;
  double fraction = 0.0;  // P(X <= value)
};
std::vector<CdfPoint> EmpiricalCdf(std::vector<double> values, size_t num_points = 50);

// Exponentially weighted moving average.
class Ewma {
 public:
  // alpha in (0, 1]: weight of the newest observation.
  explicit Ewma(double alpha);

  void Add(double value);
  double value() const { return value_; }
  bool has_value() const { return has_value_; }
  void Reset();

 private:
  double alpha_;
  double value_ = 0.0;
  bool has_value_ = false;
};

// Fixed-capacity sliding window used for tail-latency tracking; when full,
// the oldest sample is evicted.
class SlidingWindow {
 public:
  explicit SlidingWindow(size_t capacity);

  void Add(double value);
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  void Clear();

  double Mean() const;
  // Linear-interpolated percentile over the current window contents.
  double Percentile(double p) const;

 private:
  size_t capacity_;
  std::deque<double> values_;
};

// Accumulates (value, duration) pairs and reports the time-weighted mean;
// used for utilization accounting.
class TimeWeightedMean {
 public:
  void Add(double value, double duration);
  double value() const;
  double total_duration() const { return total_duration_; }

 private:
  double weighted_sum_ = 0.0;
  double total_duration_ = 0.0;
};

// Simple fixed-bucket histogram over [lo, hi); out-of-range values clamp to
// the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t num_buckets);

  void Add(double value);
  size_t total_count() const { return total_; }
  const std::vector<size_t>& buckets() const { return counts_; }
  double BucketLow(size_t i) const;
  double BucketHigh(size_t i) const;
  // Fraction of samples at or below the upper edge of bucket i.
  double CumulativeFraction(size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

}  // namespace mudi

#endif  // SRC_COMMON_STATS_H_
