// The one sanctioned process-environment read.
//
// Environment variables (MUDI_FIT_THREADS, MUDI_BENCH_SCALE, MUDI_TRACE_FILE,
// ...) are ambient configuration: invisible in a command line, easy to lose
// when a run is reproduced, and — once the simulator shards across processes
// — easy to desynchronize between shards. Funneling every read through
// GetEnv keeps the surface auditable: mudi_lint (mudi-determinism) bans raw
// getenv() everywhere else, so grepping for GetEnv call sites enumerates
// every env-derived knob a sharded launcher must capture and replicate.
//
// GetEnv distinguishes unset from set-but-empty (std::nullopt vs ""): callers
// like BenchScale treat an unset variable as a default but an empty string as
// a hard configuration error, so the distinction must not be collapsed here.
#ifndef SRC_COMMON_ENV_H_
#define SRC_COMMON_ENV_H_

#include <cstdlib>
#include <optional>
#include <string>

namespace mudi {

// Returns the value of environment variable `name`, or std::nullopt when the
// variable is not set at all. An empty value returns an empty string.
inline std::optional<std::string> GetEnv(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    return std::nullopt;
  }
  return std::string(value);
}

}  // namespace mudi

#endif  // SRC_COMMON_ENV_H_
