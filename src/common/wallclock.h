// Sanctioned wall-clock timing for observational overhead measurement.
//
// The simulator's results must be a pure function of the seed, so simulation
// logic never reads real time — mudi_lint (mudi-determinism) bans the
// std::chrono clocks everywhere except this header and src/common/rng.h.
// What legitimately needs wall time is *measuring the scheduler itself*:
// Fig. 18 reports how many real milliseconds a placement decision costs.
// Those measurements are observational — they are recorded next to results
// but never feed back into a scheduling decision, so they cannot perturb the
// simulated schedule.
//
// WallTimer is the only way repo code should touch the wall clock. If you
// find yourself wanting wall time for anything that influences control flow,
// use the Simulator's virtual clock instead.
#ifndef SRC_COMMON_WALLCLOCK_H_
#define SRC_COMMON_WALLCLOCK_H_

#include <chrono>

namespace mudi {

// Measures elapsed real time from construction (or the last Restart()).
// Monotonic (steady_clock), so immune to NTP adjustments.
class WallTimer {
 public:
  // Tag for constructing a timer without touching the clock. Used by
  // conditionally-enabled measurement (src/perf PerfRegion): the disabled
  // path must not pay even the clock read. Call Restart() before reading
  // elapsed time from an unstarted timer.
  struct Unstarted {};

  WallTimer() : start_(Clock::now()) {}
  explicit WallTimer(Unstarted) : start_() {}

  void Restart() { start_ = Clock::now(); }

  // Elapsed wall time in milliseconds since construction/Restart.
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  }

  // Elapsed wall time in seconds since construction/Restart.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mudi

#endif  // SRC_COMMON_WALLCLOCK_H_
