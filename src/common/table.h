// Console table reporter used by the benchmark harness to print
// paper-style tables/figure series with aligned columns.
#ifndef SRC_COMMON_TABLE_H_
#define SRC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace mudi {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row; must have the same number of cells as headers.
  void AddRow(std::vector<std::string> cells);

  // Formats the table with a header underline and aligned columns.
  std::string ToString() const;

  // Comma-separated dump (no alignment), one line per row incl. header.
  std::string ToCsv() const;

  // Convenience: fixed-precision double formatting.
  static std::string Num(double value, int precision = 2);
  // Percent with a trailing '%'.
  static std::string Pct(double fraction01, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mudi

#endif  // SRC_COMMON_TABLE_H_
