// Explicit floating-point comparison helpers.
//
// mudi_lint (mudi-float-eq) bans bare ==/!= against floating-point literals:
// a raw `x == 0.5` does not say whether the author wanted a tolerance or an
// intentional exact match, and silent exact compares are how schedule
// divergence sneaks past review. These helpers make the intent explicit:
//
//   ApproxEq(a, b)        tolerance compare (relative + absolute epsilon) —
//                         the default for anything that went through
//                         arithmetic.
//   ExactEq(a, b)         intentional bitwise-value compare — sentinels,
//                         defaults that are assigned (never computed), and
//                         short-circuit guards like `weight == 0.0`.
//
// This header is the one allowlisted site for raw float ==.
#ifndef SRC_COMMON_FLOAT_EQ_H_
#define SRC_COMMON_FLOAT_EQ_H_

#include <algorithm>
#include <cmath>

namespace mudi {

// Default tolerances: loose enough to absorb double rounding through a few
// dozen arithmetic ops, tight enough to distinguish any physically distinct
// quantity this simulator produces (times in ms, fractions, QPS).
inline constexpr double kDefaultRelTolerance = 1e-9;
inline constexpr double kDefaultAbsTolerance = 1e-12;

// True when a and b differ by at most `abs_tol` or by `rel_tol` of the larger
// magnitude. NaN compares unequal to everything, matching IEEE intent.
inline bool ApproxEq(double a, double b, double rel_tol = kDefaultRelTolerance,
                     double abs_tol = kDefaultAbsTolerance) {
  if (std::isnan(a) || std::isnan(b)) {
    return false;
  }
  if (a == b) {  // covers equal infinities and exact matches
    return true;
  }
  const double diff = std::fabs(a - b);
  return diff <= abs_tol || diff <= rel_tol * std::max(std::fabs(a), std::fabs(b));
}

// Intentional exact compare: use where the value is assigned, never computed
// (sentinels like -1.0, defaults like 1.0, short-circuit guards like 0.0).
// Spelling it as a named call documents that the exactness is deliberate.
inline bool ExactEq(double a, double b) { return a == b; }

}  // namespace mudi

#endif  // SRC_COMMON_FLOAT_EQ_H_
