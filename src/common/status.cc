#include "src/common/status.h"

namespace mudi {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInfeasible:
      return "INFEASIBLE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace mudi
