// Shard-audit annotations for shared mutable state.
//
// The sharded, conservative-PDES simulator (ROADMAP) can only keep seeded
// runs bit-identical if every piece of process-shared mutable state is known
// to the shard-boundary audit. These macros are that audit's input: mudi_lint
// (mudi-global-state, mudi-sync-primitive) rejects any namespace-scope /
// class-static / function-static mutable object or synchronization primitive
// in src/ that does not carry one, and each annotation must say *why* the
// state is safe to share (or how it will be partitioned).
//
//   MUDI_SHARD_SHARED("why")   on (or up to two lines above) a mutable
//                              global / class-static / static-local
//                              declaration: this object is deliberately
//                              process-shared; the string records why that
//                              is compatible with sharding.
//   MUDI_GUARDED_STATE("why")  on (or up to two lines above) a
//                              std::mutex / std::atomic / condition_variable
//                              declaration: what the primitive guards and
//                              why the protocol survives a sharded run.
//
// Both expand to a static_assert, so they are valid at namespace, class, and
// function scope, cost nothing at runtime (the 0-alloc / determinism proofs
// are unaffected), and reject an empty justification at compile time.
#ifndef SRC_COMMON_THREAD_ANNOTATIONS_H_
#define SRC_COMMON_THREAD_ANNOTATIONS_H_

#define MUDI_SHARD_SHARED(why)                                            \
  static_assert(sizeof("" why) > 1,                                       \
                "MUDI_SHARD_SHARED requires a non-empty justification")

#define MUDI_GUARDED_STATE(why)                                           \
  static_assert(sizeof("" why) > 1,                                       \
                "MUDI_GUARDED_STATE requires a non-empty justification")

#endif  // SRC_COMMON_THREAD_ANNOTATIONS_H_
