#include "src/common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/common/check.h"

namespace mudi {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MUDI_CHECK(!headers_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  MUDI_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << "\n";
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

std::string Table::ToCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << ",";
      }
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
  return os.str();
}

std::string Table::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::Pct(double fraction01, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction01 * 100.0);
  return buf;
}

}  // namespace mudi
