// Deterministic random number generation for reproducible simulation.
//
// Every stochastic component takes an explicit Rng (or a seed) so that runs are
// bit-reproducible given a seed. Rng also supports cheap forking: Fork(tag)
// derives an independent child stream, so subsystems do not perturb each
// other's sequences when the workload mix changes.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "src/common/check.h"
#include "src/common/float_eq.h"

namespace mudi {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(Scramble(seed)), seed_lineage_(Scramble(seed)) {}

  // Derives an independent stream from this rng's seed lineage and `tag`.
  Rng Fork(uint64_t tag) const { return Rng(seed_lineage_ ^ Scramble(tag)); }

  // Uniform double in [0, 1).
  double Uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    MUDI_CHECK_LT(lo, hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    MUDI_CHECK_LE(lo, hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Standard normal scaled to (mean, stddev).
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  // Log-normal multiplicative noise centred at 1.0 with the given sigma
  // (of the underlying normal). Used for observation noise in the oracle.
  double LogNormalFactor(double sigma) {
    return std::exp(std::normal_distribution<double>(-0.5 * sigma * sigma, sigma)(engine_));
  }

  // Exponential with the given mean (not rate).
  double ExponentialMean(double mean) {
    MUDI_CHECK_GT(mean, 0.0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  // Poisson-distributed count with the given mean.
  int64_t Poisson(double mean) {
    MUDI_CHECK_GE(mean, 0.0);
    if (ExactEq(mean, 0.0)) {
      return 0;
    }
    return std::poisson_distribution<int64_t>(mean)(engine_);
  }

  // Pareto (heavy-tailed) sample with scale x_m and shape alpha.
  double Pareto(double scale, double shape) {
    MUDI_CHECK_GT(scale, 0.0);
    MUDI_CHECK_GT(shape, 0.0);
    double u = Uniform();
    // Guard against u == 0 which would yield infinity.
    if (u < 1e-12) {
      u = 1e-12;
    }
    return scale / std::pow(u, 1.0 / shape);
  }

  // Samples an index according to non-negative weights (need not sum to 1).
  size_t WeightedIndex(const std::vector<double>& weights) {
    MUDI_CHECK(!weights.empty());
    double total = 0.0;
    for (double w : weights) {
      MUDI_CHECK_GE(w, 0.0);
      total += w;
    }
    MUDI_CHECK_GT(total, 0.0);
    double r = Uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0.0) {
        return i;
      }
    }
    return weights.size() - 1;
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  // splitmix64 finalizer: decorrelates nearby seeds.
  static uint64_t Scramble(uint64_t x) {
    x += 0x9E3779B97f4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  std::mt19937_64 engine_;
  uint64_t seed_lineage_ = 0;
};

}  // namespace mudi

#endif  // SRC_COMMON_RNG_H_
