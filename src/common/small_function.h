// A move-only callable with a fixed inline buffer, built for the simulator's
// event hot path. `std::function` heap-allocates for any capture larger than
// (typically) two pointers and always pays an indirect copy-constructible
// wrapper; SmallFunction stores captures up to kInlineBytes in place, falls
// back to one heap cell beyond that, and never requires copyability — so
// move-only captures (unique_ptr, another SmallFunction) work. With the
// event arena this is what takes schedule/fire/cancel to zero allocations
// per event (asserted by the mudi_perf_alloc_hook tests).
#ifndef SRC_COMMON_SMALL_FUNCTION_H_
#define SRC_COMMON_SMALL_FUNCTION_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace mudi {

template <typename Signature, size_t kInlineBytes = 48>
class SmallFunction;

template <typename R, typename... Args, size_t kInlineBytes>
class SmallFunction<R(Args...), kInlineBytes> {
 public:
  SmallFunction() = default;
  SmallFunction(std::nullptr_t) {}  // NOLINT(runtime/explicit) — mirrors std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFunction(F&& f) {  // NOLINT(runtime/explicit) — mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buffer_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      *reinterpret_cast<Fn**>(buffer_) = new Fn(std::forward<F>(f));
      ops_ = &HeapOps<Fn>::ops;
    }
  }

  SmallFunction(SmallFunction&& other) noexcept { MoveFrom(std::move(other)); }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  SmallFunction& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) const {
    return ops_->invoke(const_cast<unsigned char*>(buffer_), std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(unsigned char*, Args&&...);
    void (*relocate)(unsigned char* dst, unsigned char* src);  // src left destroyed
    void (*destroy)(unsigned char*);
  };

  template <typename Fn>
  struct InlineOps {
    static R Invoke(unsigned char* buf, Args&&... args) {
      return (*reinterpret_cast<Fn*>(buf))(std::forward<Args>(args)...);
    }
    static void Relocate(unsigned char* dst, unsigned char* src) {
      Fn* from = reinterpret_cast<Fn*>(src);
      ::new (static_cast<void*>(dst)) Fn(std::move(*from));
      from->~Fn();
    }
    static void Destroy(unsigned char* buf) { reinterpret_cast<Fn*>(buf)->~Fn(); }
    static constexpr Ops ops{&Invoke, &Relocate, &Destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static R Invoke(unsigned char* buf, Args&&... args) {
      return (**reinterpret_cast<Fn**>(buf))(std::forward<Args>(args)...);
    }
    static void Relocate(unsigned char* dst, unsigned char* src) {
      *reinterpret_cast<Fn**>(dst) = *reinterpret_cast<Fn**>(src);
    }
    static void Destroy(unsigned char* buf) { delete *reinterpret_cast<Fn**>(buf); }
    static constexpr Ops ops{&Invoke, &Relocate, &Destroy};
  };

  void MoveFrom(SmallFunction&& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buffer_, other.buffer_);
      other.ops_ = nullptr;
    }
  }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buffer_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buffer_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace mudi

#endif  // SRC_COMMON_SMALL_FUNCTION_H_
