#include "src/baselines/muxflow_policy.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/baselines/baseline_util.h"
#include "src/common/check.h"
#include "src/common/wallclock.h"
#include "src/perf/perf_collector.h"

namespace mudi {

bool MuxflowPolicy::TableKey::operator<(const TableKey& other) const {
  if (service_index != other.service_index) {
    return service_index < other.service_index;
  }
  if (training_type != other.training_type) {
    return training_type < other.training_type;
  }
  if (batch != other.batch) {
    return batch < other.batch;
  }
  return fraction_pct < other.fraction_pct;
}

MuxflowPolicy::MuxflowPolicy(const PerfOracle& profiling_oracle, Options options)
    : profiling_oracle_(profiling_oracle), options_(std::move(options)), rng_(options_.seed) {}

MuxflowPolicy::MuxflowPolicy(const PerfOracle& profiling_oracle)
    : MuxflowPolicy(profiling_oracle, Options{}) {}

void MuxflowPolicy::Initialize(SchedulingEnv& env) {
  (void)env;
  if (initialized_) {
    return;
  }
  const auto& services = ModelZoo::InferenceServices();
  const auto& tasks = ModelZoo::TrainingTasks();
  for (size_t s = 0; s < services.size(); ++s) {
    for (size_t t = 0; t < options_.profiled_training_types; ++t) {
      for (int b : ProfilingBatchSizes()) {
        for (double g : options_.fraction_grid) {
          std::vector<ColocatedTraining> colocated{
              ColocatedTraining{&tasks[t], std::max(0.05, 1.0 - g)}};
          double lat =
              profiling_oracle_.ObserveInferenceBatchLatency(services[s], b, g, colocated, rng_)
                  .total_ms();
          latency_table_[TableKey{s, t, b, static_cast<int>(std::lround(g * 100.0))}] = lat;
        }
      }
    }
  }
  initialized_ = true;
}

double MuxflowPolicy::TableLatency(size_t service_index, size_t training_type, int batch,
                                   double fraction) const {
  int pct = static_cast<int>(std::lround(fraction * 100.0));
  if (training_type < options_.profiled_training_types) {
    auto it = latency_table_.find(TableKey{service_index, training_type, batch, pct});
    if (it != latency_table_.end()) {
      return it->second;
    }
  }
  // Unseen type: across-type average — MuxFlow's blind spot for new tasks.
  double sum = 0.0;
  size_t count = 0;
  for (size_t t = 0; t < options_.profiled_training_types; ++t) {
    auto it = latency_table_.find(TableKey{service_index, t, batch, pct});
    if (it != latency_table_.end()) {
      sum += it->second;
      ++count;
    }
  }
  MUDI_CHECK_GT(count, 0u);
  return sum / static_cast<double>(count);
}

double MuxflowPolicy::MinTableFraction(size_t service_index, size_t training_type, int batch,
                                       double qps, double slo_ms) const {
  for (double g : options_.fraction_grid) {
    double lat = TableLatency(service_index, training_type, batch, g);
    // Literal Eq. 2 constraint: (W/b)·P <= SLO. Unlike Mudi's quantification
    // (which adds a queue-stability cap, see policy.h), the published
    // MuxFlow has no utilization guard — for long-SLO services this admits
    // queue-unstable allocations, one source of its SLO violations (Fig. 8).
    if (qps <= 0.0 || qps / static_cast<double>(batch) * lat <= slo_ms) {
      return g;
    }
  }
  return -1.0;
}

std::optional<int> MuxflowPolicy::SelectDevice(SchedulingEnv& env, const TrainingTaskInfo& task) {
  MUDI_CHECK(initialized_);
  WallTimer timer;
  std::vector<int> eligible =
      EligibleDevices(env, task, MaxTrainingsPerDevice(), /*require_fit=*/true);
  // Matching score: the SLO-safety margin the table promises for this pair
  // at the default operating point (median batch, current QPS).
  std::optional<int> best;
  double best_margin = -std::numeric_limits<double>::infinity();
  for (int id : eligible) {
    const GpuDevice& device = env.device(id);
    size_t s = device.inference().service_index;
    const InferenceServiceSpec& service = ModelZoo::InferenceServices()[s];
    double qps = env.MeasuredQps(id);
    int batch = ProfilingBatchSizes()[ProfilingBatchSizes().size() / 2];
    double g = MinTableFraction(s, task.type_index, batch, qps, service.slo_ms);
    double margin;
    if (g < 0.0) {
      margin = -1000.0;
    } else {
      double lat = TableLatency(s, task.type_index, batch, g);
      double budget = PlanningLatencyBudgetMs(batch, std::max(qps, 1e-9), service.slo_ms);
      margin = (budget - lat) / budget - 0.5 * g;  // prefer safety, then small g
    }
    if (margin > best_margin) {
      best_margin = margin;
      best = id;
    }
  }
  RecordPlacementOverhead(timer.ElapsedMs());
  return best;
}

void MuxflowPolicy::Retune(SchedulingEnv& env, int device_id) {
  perf::PerfRegion region(env.perf(), "muxflow.retune");
  const GpuDevice& device = env.device(device_id);
  size_t s = device.inference().service_index;
  const InferenceServiceSpec& service = ModelZoo::InferenceServices()[s];
  double qps = env.MeasuredQps(device_id);

  // Representative resident type for the lookup (first active training).
  size_t type = options_.profiled_training_types;  // sentinel: unseen/none
  for (const auto& t : device.trainings()) {
    if (!t.paused) {
      type = t.type_index;
      break;
    }
  }

  // MuxFlow adjusts the SM allocation only; the serving batch is fixed by
  // the service owner (it has no adaptive-batching loop). The SM share is
  // the smallest tabled fraction meeting the planning budget with the
  // production safety margin.
  int chosen_batch = options_.fixed_batch;
  double chosen_g = 0.9;
  size_t lookups = 0;
  for (double g : options_.fraction_grid) {
    ++lookups;
    double lat = TableLatency(s, type, chosen_batch, g);
    // Literal Eq. 2 budget (no stability cap; see MinTableFraction).
    if (lat <= options_.safety_factor * service.slo_ms *
                   static_cast<double>(chosen_batch) / std::max(qps, 1e-9)) {
      chosen_g = g;
      break;
    }
  }
  RecordTuningIterations(lookups);
  env.ApplyInferenceConfig(device_id, chosen_batch, chosen_g);

  size_t active = device.num_active_trainings();
  if (active > 0) {
    double share = std::max(0.05, (1.0 - chosen_g) / static_cast<double>(active));
    for (const auto& t : device.trainings()) {
      if (!t.paused) {
        env.ApplyTrainingFraction(device_id, t.task_id, share);
      }
    }
  }
}

void MuxflowPolicy::OnTrainingPlaced(SchedulingEnv& env, int device_id,
                                     const TrainingTaskInfo& task) {
  (void)task;
  Retune(env, device_id);
}

void MuxflowPolicy::OnQpsChange(SchedulingEnv& env, int device_id) {
  const GpuDevice& device = env.device(device_id);
  const InferenceServiceSpec& service =
      ModelZoo::InferenceServices()[device.inference().service_index];
  // Reactive SM escalation: when the measured tail latency endangers the
  // SLO, MuxFlow grows the online service's SM share directly — the table
  // got it wrong and re-reading it would repeat the mistake.
  if (env.MeasuredP99(device_id) > 0.9 * service.slo_ms) {
    double g = std::min(0.9, device.inference().gpu_fraction + 0.1);
    env.ApplyInferenceConfig(device_id, device.inference().batch_size, g);
    size_t active = device.num_active_trainings();
    if (active > 0) {
      double share = std::max(0.05, (1.0 - g) / static_cast<double>(active));
      for (const auto& t : device.trainings()) {
        if (!t.paused) {
          env.ApplyTrainingFraction(device_id, t.task_id, share);
        }
      }
    }
    return;
  }
  Retune(env, device_id);
}

}  // namespace mudi
