// GSLICE baseline (Dhakal et al., SoCC '20; paper §7.1).
//
// GSLICE controls spatial GPU partitions for inference services using
// *latency/throughput feedback*: it probes the deployed configuration,
// grows the partition while the SLO is missed and shrinks it while there is
// comfortable headroom, with a knee-detection-free step controller. Batching
// is chosen by throughput feedback at the current partition. It has no
// cluster-wide interference model — training placement is least-loaded — and
// (per the paper's adaptation) training receives the leftover partition.
#ifndef SRC_BASELINES_GSLICE_POLICY_H_
#define SRC_BASELINES_GSLICE_POLICY_H_

#include <string>

#include "src/cluster/policy.h"

namespace mudi {

class GslicePolicy : public MultiplexPolicy {
 public:
  struct Options {
    double initial_fraction = 0.5;
    double step = 0.1;
    double min_fraction = 0.1;
    double max_fraction = 0.9;
    // Shrink while headroom factor of the SLO budget is available.
    double shrink_headroom = 0.68;
    // Feedback steps applied per trigger: GSLICE adjusts incrementally
    // between measurement windows rather than converging in one shot.
    int max_feedback_rounds = 3;
  };

  GslicePolicy();
  explicit GslicePolicy(Options options);

  std::string name() const override { return "GSLICE"; }
  std::optional<int> SelectDevice(SchedulingEnv& env, const TrainingTaskInfo& task) override;
  void OnTrainingPlaced(SchedulingEnv& env, int device_id,
                        const TrainingTaskInfo& task) override;
  void OnTrainingCompleted(SchedulingEnv& env, int device_id, int task_id) override;
  void OnQpsChange(SchedulingEnv& env, int device_id) override;

 private:
  // Feedback loop: batch by throughput probing, partition by step control.
  void Retune(SchedulingEnv& env, int device_id);

  Options options_;
};

}  // namespace mudi

#endif  // SRC_BASELINES_GSLICE_POLICY_H_
