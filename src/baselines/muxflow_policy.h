// MuxFlow baseline (Zhao et al., 2023; paper §7.1).
//
// MuxFlow multiplexes production inference with offline training using
// *pre-profiled* performance tables and matching-based scheduling: each
// (service, training-type, batch, GPU%) cell memorizes the measured latency /
// iteration time. Placement matches a training task to the device whose
// table entry promises the best SLO-safety margin; SM allocation is looked
// up from the table (dynamic SM allocation on placement and QPS change).
// Its weakness, which the paper's Fig. 8 highlights: unseen training types
// have no table rows, so MuxFlow falls back to the across-type average and
// misjudges interference.
#ifndef SRC_BASELINES_MUXFLOW_POLICY_H_
#define SRC_BASELINES_MUXFLOW_POLICY_H_

#include <map>
#include <string>
#include <vector>

#include "src/cluster/policy.h"
#include "src/common/rng.h"
#include "src/gpu/perf_oracle.h"

namespace mudi {

class MuxflowPolicy : public MultiplexPolicy {
 public:
  struct Options {
    size_t profiled_training_types = ModelZoo::kNumObservedTrainingTypes;
    // Production inference batch (fixed by the service owner; MuxFlow does
    // not adapt batching) and the safety margin on the planning budget.
    int fixed_batch = 64;
    double safety_factor = 1.0;
    std::vector<double> fraction_grid{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
    uint64_t seed = 19;
  };

  // `profiling_oracle` backs the offline table construction (same offline
  // measurement budget as Mudi's profiler).
  MuxflowPolicy(const PerfOracle& profiling_oracle, Options options);
  explicit MuxflowPolicy(const PerfOracle& profiling_oracle);

  std::string name() const override { return "MuxFlow"; }
  void Initialize(SchedulingEnv& env) override;
  std::optional<int> SelectDevice(SchedulingEnv& env, const TrainingTaskInfo& task) override;
  void OnTrainingPlaced(SchedulingEnv& env, int device_id,
                        const TrainingTaskInfo& task) override;
  void OnQpsChange(SchedulingEnv& env, int device_id) override;

 private:
  struct TableKey {
    size_t service_index;
    size_t training_type;
    int batch;
    int fraction_pct;
    bool operator<(const TableKey& other) const;
  };

  // Table lookup with unseen-type fallback (across-type average).
  double TableLatency(size_t service_index, size_t training_type, int batch,
                      double fraction) const;
  // Minimal tabled GPU% meeting the planning SLO for a batch; <0 if none.
  double MinTableFraction(size_t service_index, size_t training_type, int batch, double qps,
                          double slo_ms) const;
  void Retune(SchedulingEnv& env, int device_id);

  const PerfOracle& profiling_oracle_;
  Options options_;
  Rng rng_;
  std::map<TableKey, double> latency_table_;
  bool initialized_ = false;
};

}  // namespace mudi

#endif  // SRC_BASELINES_MUXFLOW_POLICY_H_
