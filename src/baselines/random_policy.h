// Random baseline (paper §7.4, Fig. 17): uniform-random placement among
// eligible devices and an even split of the GPU among all co-located
// workloads — no interference awareness, no tuning.
#ifndef SRC_BASELINES_RANDOM_POLICY_H_
#define SRC_BASELINES_RANDOM_POLICY_H_

#include <string>

#include "src/cluster/policy.h"
#include "src/common/rng.h"

namespace mudi {

class RandomPolicy : public MultiplexPolicy {
 public:
  struct Options {
    int max_trainings_per_device = 1;
    int default_batch = 64;
    uint64_t seed = 23;
  };

  RandomPolicy();
  explicit RandomPolicy(Options options);

  std::string name() const override { return "Random"; }
  std::optional<int> SelectDevice(SchedulingEnv& env, const TrainingTaskInfo& task) override;
  void OnTrainingPlaced(SchedulingEnv& env, int device_id,
                        const TrainingTaskInfo& task) override;
  void OnTrainingCompleted(SchedulingEnv& env, int device_id, int task_id) override;
  int MaxTrainingsPerDevice() const override { return options_.max_trainings_per_device; }

 private:
  void EvenSplit(SchedulingEnv& env, int device_id);

  Options options_;
  Rng rng_;
};

}  // namespace mudi

#endif  // SRC_BASELINES_RANDOM_POLICY_H_
