#include "src/baselines/baseline_util.h"

namespace mudi {

std::vector<int> EligibleDevices(SchedulingEnv& env, const TrainingTaskInfo& task,
                                 int max_trainings, bool require_fit) {
  std::vector<int> out;
  for (const GpuDevice& device : env.devices()) {
    if (!device.healthy() || !device.has_inference()) {
      continue;
    }
    if (device.trainings().size() >= static_cast<size_t>(max_trainings)) {
      continue;
    }
    if (require_fit && !env.CanFitTraining(device.id(), *task.spec)) {
      continue;
    }
    out.push_back(device.id());
  }
  return out;
}

bool PlanningSloHolds(double latency_ms, int batch, double qps, double slo_ms) {
  if (qps <= 0.0) {
    return true;
  }
  return latency_ms <= PlanningLatencyBudgetMs(batch, qps, slo_ms);
}

}  // namespace mudi
