// Optimal baseline (paper §5.4, §7.2): exhaustive search over co-location
// and configuration using the *ground-truth* oracle (env.oracle()). For each
// eligible device it scans the full (batch × GPU%) grid, keeps the
// configuration minimizing the true training iteration time subject to the
// true SLO planning constraint, and places the task on the globally best
// device. This is the only policy permitted to read ground truth; it bounds
// what any multiplexer could achieve.
#ifndef SRC_BASELINES_OPTIMAL_POLICY_H_
#define SRC_BASELINES_OPTIMAL_POLICY_H_

#include <map>
#include <string>
#include <vector>

#include "src/cluster/policy.h"
#include "src/common/rng.h"

namespace mudi {

class OptimalPolicy : public MultiplexPolicy {
 public:
  struct Options {
    std::vector<double> fraction_grid{0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50,
                                      0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90};
    // Cap on devices fully scanned per placement: on a 1000-GPU cluster a
    // truly exhaustive scan is intractable, so beyond the cap a uniform
    // device sample is solved (each service type stays represented because
    // replicas are spread round-robin).
    size_t max_devices_scanned = 64;
    uint64_t seed = 29;
  };

  OptimalPolicy();
  explicit OptimalPolicy(Options options);

  std::string name() const override { return "Optimal"; }
  std::optional<int> SelectDevice(SchedulingEnv& env, const TrainingTaskInfo& task) override;
  void OnTrainingPlaced(SchedulingEnv& env, int device_id,
                        const TrainingTaskInfo& task) override;
  void OnTrainingCompleted(SchedulingEnv& env, int device_id, int task_id) override;
  void OnQpsChange(SchedulingEnv& env, int device_id) override;
  bool SupportsMemorySwap() const override { return true; }

 private:
  struct BestConfig {
    bool feasible = false;
    int batch = 0;
    double inference_fraction = 0.0;
    double objective = 0.0;
  };

  // True-oracle exhaustive (batch, Δ) search for a device, assuming the
  // candidate training type joins (or type = current mix when joining_type
  // is SIZE_MAX).
  BestConfig SolveDevice(SchedulingEnv& env, int device_id, size_t joining_type) const;
  void ApplyConfig(SchedulingEnv& env, int device_id, const BestConfig& config);

  Options options_;
  Rng rng_{29};
  // Placement-time choice, applied in OnTrainingPlaced.
  std::map<int, BestConfig> pending_;
};

}  // namespace mudi

#endif  // SRC_BASELINES_OPTIMAL_POLICY_H_
