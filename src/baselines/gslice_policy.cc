#include "src/baselines/gslice_policy.h"

#include <algorithm>
#include <limits>

#include "src/baselines/baseline_util.h"
#include "src/common/check.h"
#include "src/common/wallclock.h"
#include "src/perf/perf_collector.h"
#include "src/workload/models.h"

namespace mudi {

GslicePolicy::GslicePolicy() : GslicePolicy(Options{}) {}

GslicePolicy::GslicePolicy(Options options) : options_(options) {
  MUDI_CHECK_LT(options_.min_fraction, options_.max_fraction);
}

std::optional<int> GslicePolicy::SelectDevice(SchedulingEnv& env, const TrainingTaskInfo& task) {
  WallTimer timer;
  // No interference model: least-loaded device (fewest resident trainings,
  // then lowest memory pressure).
  std::vector<int> eligible =
      EligibleDevices(env, task, MaxTrainingsPerDevice(), /*require_fit=*/true);
  std::optional<int> best;
  double best_key = std::numeric_limits<double>::infinity();
  for (int id : eligible) {
    const GpuDevice& device = env.device(id);
    double key = static_cast<double>(device.trainings().size()) * 1000.0 +
                 device.MemoryResidentMb() / device.memory_mb();
    if (key < best_key) {
      best_key = key;
      best = id;
    }
  }
  RecordPlacementOverhead(timer.ElapsedMs());
  return best;
}

void GslicePolicy::Retune(SchedulingEnv& env, int device_id) {
  perf::PerfRegion region(env.perf(), "gslice.retune");
  const GpuDevice& device = env.device(device_id);
  MUDI_CHECK(device.has_inference());
  const InferenceServiceSpec& service =
      ModelZoo::InferenceServices()[device.inference().service_index];
  double qps = env.MeasuredQps(device_id);

  // Batch selection by throughput feedback at the current partition: probe
  // each candidate once, keep the largest batch whose probed latency
  // satisfies the planning SLO.
  double fraction = device.inference().gpu_fraction > 0.0 ? device.inference().gpu_fraction
                                                          : options_.initial_fraction;
  const auto& batches = ProfilingBatchSizes();
  int batch = batches.front();
  size_t rounds = 0;
  for (auto it = batches.rbegin(); it != batches.rend(); ++it) {
    ++rounds;
    double lat = env.ProbeInferenceLatencyMs(device_id, *it, fraction);
    if (PlanningSloHolds(lat, *it, qps, service.slo_ms)) {
      batch = *it;
      break;
    }
  }

  // Partition step-control feedback: grow while violating, shrink while the
  // probed latency leaves ample headroom.
  for (int round = 0; round < options_.max_feedback_rounds; ++round) {
    ++rounds;
    double lat = env.ProbeInferenceLatencyMs(device_id, batch, fraction);
    double budget = PlanningLatencyBudgetMs(batch, std::max(qps, 1e-9), service.slo_ms);
    if (lat > budget && fraction < options_.max_fraction) {
      fraction = std::min(options_.max_fraction, fraction + options_.step);
    } else if (lat < options_.shrink_headroom * budget &&
               fraction > options_.min_fraction + options_.step) {
      fraction -= options_.step;
    } else {
      break;
    }
  }
  RecordTuningIterations(rounds);

  env.ApplyInferenceConfig(device_id, batch, fraction);
  size_t active = device.num_active_trainings();
  if (active > 0) {
    double share = std::max(0.05, (1.0 - fraction) / static_cast<double>(active));
    for (const auto& t : device.trainings()) {
      if (!t.paused) {
        env.ApplyTrainingFraction(device_id, t.task_id, share);
      }
    }
  }
}

void GslicePolicy::OnTrainingPlaced(SchedulingEnv& env, int device_id,
                                    const TrainingTaskInfo& task) {
  (void)task;
  Retune(env, device_id);
}

void GslicePolicy::OnTrainingCompleted(SchedulingEnv& env, int device_id, int task_id) {
  (void)task_id;
  Retune(env, device_id);
}

void GslicePolicy::OnQpsChange(SchedulingEnv& env, int device_id) { Retune(env, device_id); }

}  // namespace mudi
