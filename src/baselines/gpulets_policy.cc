#include "src/baselines/gpulets_policy.h"

#include <algorithm>
#include <limits>

#include "src/baselines/baseline_util.h"
#include "src/common/check.h"
#include "src/common/wallclock.h"
#include "src/perf/perf_collector.h"
#include "src/workload/models.h"

namespace mudi {

GpuletsPolicy::GpuletsPolicy() : GpuletsPolicy(Options{}) {}

GpuletsPolicy::GpuletsPolicy(Options options) : options_(std::move(options)) {
  MUDI_CHECK(!options_.slice_menu.empty());
}

std::pair<int, double> GpuletsPolicy::FitInferenceSlice(SchedulingEnv& env, int device_id,
                                                        size_t* probes) {
  const GpuDevice& device = env.device(device_id);
  const InferenceServiceSpec& service =
      ModelZoo::InferenceServices()[device.inference().service_index];
  double qps = env.MeasuredQps(device_id);
  const auto& batches = ProfilingBatchSizes();

  // Smallest slice first; within a slice prefer larger batches (throughput).
  for (double slice : options_.slice_menu) {
    double usable = std::min(slice, 0.9);
    for (auto it = batches.rbegin(); it != batches.rend(); ++it) {
      ++*probes;
      double lat = env.ProbeInferenceLatencyMs(device_id, *it, usable);
      if (PlanningSloHolds(lat, *it, qps, service.slo_ms)) {
        return {*it, usable};
      }
    }
  }
  // Nothing fits: fall back to the biggest slice and smallest batch.
  return {batches.front(), std::min(options_.slice_menu.back(), 0.9)};
}

void GpuletsPolicy::Retune(SchedulingEnv& env, int device_id) {
  perf::PerfRegion region(env.perf(), "gpulets.retune");
  size_t probes = 0;
  auto [batch, slice] = FitInferenceSlice(env, device_id, &probes);
  RecordTuningIterations(probes);
  env.ApplyInferenceConfig(device_id, batch, slice);

  const GpuDevice& device = env.device(device_id);
  size_t active = device.num_active_trainings();
  if (active > 0) {
    double residual = std::max(options_.min_training_slice, 1.0 - slice);
    double share = std::max(0.05, residual / static_cast<double>(active));
    for (const auto& t : device.trainings()) {
      if (!t.paused) {
        env.ApplyTrainingFraction(device_id, t.task_id, share);
      }
    }
  }
}

std::optional<int> GpuletsPolicy::SelectDevice(SchedulingEnv& env, const TrainingTaskInfo& task) {
  WallTimer timer;
  // Best-fit: the device whose residual slice after the inference gpulet is
  // smallest but still above the training minimum.
  std::vector<int> eligible =
      EligibleDevices(env, task, MaxTrainingsPerDevice(), /*require_fit=*/true);
  std::optional<int> best;
  double best_residual = std::numeric_limits<double>::infinity();
  for (int id : eligible) {
    const GpuDevice& device = env.device(id);
    double inf_slice = device.inference().gpu_fraction;
    double used_by_training = 0.0;
    for (const auto& t : device.trainings()) {
      used_by_training += t.gpu_fraction;
    }
    double residual = 1.0 - inf_slice - used_by_training;
    if (residual < options_.min_training_slice) {
      continue;
    }
    if (residual < best_residual) {
      best_residual = residual;
      best = id;
    }
  }
  if (!best.has_value() && !eligible.empty()) {
    best = eligible.front();
  }
  RecordPlacementOverhead(timer.ElapsedMs());
  return best;
}

void GpuletsPolicy::OnTrainingPlaced(SchedulingEnv& env, int device_id,
                                     const TrainingTaskInfo& task) {
  (void)task;
  Retune(env, device_id);
}

void GpuletsPolicy::OnTrainingCompleted(SchedulingEnv& env, int device_id, int task_id) {
  (void)task_id;
  Retune(env, device_id);
}

void GpuletsPolicy::OnQpsChange(SchedulingEnv& env, int device_id) {
  // gpulets assigns virtual-GPU partitions at (re)scheduling points; it has
  // no request-rate-driven repartitioning loop, so load drift between
  // scheduling events goes unanswered (a key gap vs Mudi's Tuner).
  (void)env;
  (void)device_id;
}

}  // namespace mudi
