// Shared helpers for the baseline multiplexing policies.
#ifndef SRC_BASELINES_BASELINE_UTIL_H_
#define SRC_BASELINES_BASELINE_UTIL_H_

#include <vector>

#include "src/cluster/policy.h"

namespace mudi {

// Devices that can accept one more training task under `max_trainings`;
// when `require_fit` is set, the full working set must fit device memory
// (policies without a memory manager must not overcommit).
std::vector<int> EligibleDevices(SchedulingEnv& env, const TrainingTaskInfo& task,
                                 int max_trainings, bool require_fit);

// The paper's literal SLO planning constraint (Eq. 2): (W/b)·P <= SLO.
bool PlanningSloHolds(double latency_ms, int batch, double qps, double slo_ms);

}  // namespace mudi

#endif  // SRC_BASELINES_BASELINE_UTIL_H_
