#include "src/baselines/random_policy.h"

#include <algorithm>

#include "src/baselines/baseline_util.h"
#include "src/perf/perf_collector.h"

namespace mudi {

RandomPolicy::RandomPolicy() : RandomPolicy(Options{}) {}

RandomPolicy::RandomPolicy(Options options) : options_(options), rng_(options.seed) {}

std::optional<int> RandomPolicy::SelectDevice(SchedulingEnv& env, const TrainingTaskInfo& task) {
  std::vector<int> eligible =
      EligibleDevices(env, task, options_.max_trainings_per_device, /*require_fit=*/true);
  if (eligible.empty()) {
    return std::nullopt;
  }
  return eligible[static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int64_t>(eligible.size()) - 1))];
}

void RandomPolicy::EvenSplit(SchedulingEnv& env, int device_id) {
  perf::PerfRegion region(env.perf(), "random.even_split");
  const GpuDevice& device = env.device(device_id);
  size_t workloads = 1 + device.num_active_trainings();
  double share = 1.0 / static_cast<double>(workloads);
  env.ApplyInferenceConfig(device_id, options_.default_batch, std::min(share, 0.9));
  for (const auto& t : device.trainings()) {
    if (!t.paused) {
      env.ApplyTrainingFraction(device_id, t.task_id, share);
    }
  }
}

void RandomPolicy::OnTrainingPlaced(SchedulingEnv& env, int device_id,
                                    const TrainingTaskInfo& task) {
  (void)task;
  EvenSplit(env, device_id);
}

void RandomPolicy::OnTrainingCompleted(SchedulingEnv& env, int device_id, int task_id) {
  (void)task_id;
  EvenSplit(env, device_id);
}

}  // namespace mudi
