#include "src/baselines/optimal_policy.h"

#include <algorithm>
#include <limits>

#include "src/baselines/baseline_util.h"
#include "src/common/check.h"
#include "src/common/wallclock.h"
#include "src/perf/perf_collector.h"
#include "src/workload/models.h"

namespace mudi {

OptimalPolicy::OptimalPolicy() : OptimalPolicy(Options{}) {}

OptimalPolicy::OptimalPolicy(Options options) : options_(std::move(options)), rng_(options_.seed) {
  MUDI_CHECK(!options_.fraction_grid.empty());
}

OptimalPolicy::BestConfig OptimalPolicy::SolveDevice(SchedulingEnv& env, int device_id,
                                                     size_t joining_type) const {
  perf::PerfRegion region(env.perf(), "optimal.solve_device");
  const GpuDevice& device = env.device(device_id);
  MUDI_CHECK(device.has_inference());
  const PerfOracle& oracle = env.oracle();
  const auto& services = ModelZoo::InferenceServices();
  const auto& tasks = ModelZoo::TrainingTasks();
  const InferenceServiceSpec& service = services[device.inference().service_index];
  double qps = env.MeasuredQps(device_id);

  // The training mix after the candidate joins.
  std::vector<size_t> mix;
  for (const auto& t : device.trainings()) {
    if (!t.paused) {
      mix.push_back(t.type_index);
    }
  }
  if (joining_type != SIZE_MAX) {
    mix.push_back(joining_type);
  }

  BestConfig best;
  best.objective = std::numeric_limits<double>::infinity();
  for (int b : ProfilingBatchSizes()) {
    for (double g : options_.fraction_grid) {
      double train_share =
          mix.empty() ? 0.0 : std::max(0.05, (1.0 - g) / static_cast<double>(mix.size()));
      std::vector<ColocatedTraining> colocated;
      colocated.reserve(mix.size());
      for (size_t type : mix) {
        colocated.push_back(ColocatedTraining{&tasks[type], train_share});
      }
      double latency = oracle.InferenceBatchLatency(service, b, g, colocated).total_ms();
      if (!PlanningSloHolds(latency, b, qps, service.slo_ms)) {
        continue;
      }
      // Objective: total true iteration time of the resident training tasks.
      double objective = 0.0;
      if (mix.empty()) {
        objective = g;  // no training: prefer the smallest feasible share
      } else {
        InferenceLoad load{&service, b, g, qps};
        for (size_t i = 0; i < mix.size(); ++i) {
          std::vector<ColocatedTraining> others;
          for (size_t j = 0; j < mix.size(); ++j) {
            if (j != i) {
              others.push_back(colocated[j]);
            }
          }
          objective += oracle.TrainingIterationMs(tasks[mix[i]], train_share, load, others);
        }
      }
      if (objective < best.objective) {
        best.feasible = true;
        best.batch = b;
        best.inference_fraction = g;
        best.objective = objective;
      }
    }
  }
  return best;
}

void OptimalPolicy::ApplyConfig(SchedulingEnv& env, int device_id, const BestConfig& config) {
  if (!config.feasible) {
    // Even the exhaustive search cannot hold the SLO with multiplexing:
    // preempt training and give the service the whole grid maximum.
    const GpuDevice& device = env.device(device_id);
    for (const auto& t : device.trainings()) {
      env.SetTrainingPaused(device_id, t.task_id, true);
    }
    env.ApplyInferenceConfig(device_id, ProfilingBatchSizes().front(),
                             options_.fraction_grid.back());
    return;
  }
  const GpuDevice& device = env.device(device_id);
  for (const auto& t : device.trainings()) {
    if (t.paused) {
      env.SetTrainingPaused(device_id, t.task_id, false);
    }
  }
  env.ApplyInferenceConfig(device_id, config.batch, config.inference_fraction);
  size_t active = device.num_active_trainings();
  if (active > 0) {
    double share =
        std::max(0.05, (1.0 - config.inference_fraction) / static_cast<double>(active));
    for (const auto& t : device.trainings()) {
      if (!t.paused) {
        env.ApplyTrainingFraction(device_id, t.task_id, share);
      }
    }
  }
}

std::optional<int> OptimalPolicy::SelectDevice(SchedulingEnv& env, const TrainingTaskInfo& task) {
  WallTimer timer;
  std::vector<int> eligible =
      EligibleDevices(env, task, MaxTrainingsPerDevice(), /*require_fit=*/false);
  if (eligible.size() > options_.max_devices_scanned) {
    rng_.Shuffle(eligible);
    eligible.resize(options_.max_devices_scanned);
  }
  std::optional<int> best_device;
  BestConfig best;
  best.objective = std::numeric_limits<double>::infinity();
  for (int id : eligible) {
    BestConfig config = SolveDevice(env, id, task.type_index);
    if (config.feasible && config.objective < best.objective) {
      best = config;
      best_device = id;
    }
  }
  if (best_device.has_value()) {
    pending_[task.task_id] = best;
  }
  RecordPlacementOverhead(timer.ElapsedMs());
  return best_device;
}

void OptimalPolicy::OnTrainingPlaced(SchedulingEnv& env, int device_id,
                                     const TrainingTaskInfo& task) {
  auto it = pending_.find(task.task_id);
  if (it != pending_.end()) {
    ApplyConfig(env, device_id, it->second);
    pending_.erase(it);
  } else {
    ApplyConfig(env, device_id, SolveDevice(env, device_id, SIZE_MAX));
  }
}

void OptimalPolicy::OnTrainingCompleted(SchedulingEnv& env, int device_id, int task_id) {
  (void)task_id;
  ApplyConfig(env, device_id, SolveDevice(env, device_id, SIZE_MAX));
}

void OptimalPolicy::OnQpsChange(SchedulingEnv& env, int device_id) {
  ApplyConfig(env, device_id, SolveDevice(env, device_id, SIZE_MAX));
}

}  // namespace mudi
