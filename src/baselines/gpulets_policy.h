// gpulets baseline (Choi et al., ATC '22; paper §7.1).
//
// gpulets virtualizes each GPU into discrete partitions ("gpulets") from a
// fixed size menu. The inference service is assigned the *smallest* gpulet
// whose probed latency meets the SLO at a feasibility-chosen batch; the
// training task is bin-packed into the residual gpulet of the device where
// it fits most tightly (best-fit decreasing). There is no architecture-based
// interference prediction and no memory overcommit.
#ifndef SRC_BASELINES_GPULETS_POLICY_H_
#define SRC_BASELINES_GPULETS_POLICY_H_

#include <string>
#include <vector>

#include "src/cluster/policy.h"

namespace mudi {

class GpuletsPolicy : public MultiplexPolicy {
 public:
  struct Options {
    // The gpulet size menu (fractions of a GPU).
    std::vector<double> slice_menu{0.2, 0.4, 0.6, 0.8, 1.0};
    // Minimum residual slice worth giving to training.
    double min_training_slice = 0.2;
  };

  GpuletsPolicy();
  explicit GpuletsPolicy(Options options);

  std::string name() const override { return "gpulets"; }
  std::optional<int> SelectDevice(SchedulingEnv& env, const TrainingTaskInfo& task) override;
  void OnTrainingPlaced(SchedulingEnv& env, int device_id,
                        const TrainingTaskInfo& task) override;
  void OnTrainingCompleted(SchedulingEnv& env, int device_id, int task_id) override;
  void OnQpsChange(SchedulingEnv& env, int device_id) override;

 private:
  // Smallest slice + batch meeting the SLO by probing; returns (batch, slice).
  std::pair<int, double> FitInferenceSlice(SchedulingEnv& env, int device_id, size_t* probes);
  void Retune(SchedulingEnv& env, int device_id);

  Options options_;
};

}  // namespace mudi

#endif  // SRC_BASELINES_GPULETS_POLICY_H_
