// Content-addressed keys for what-if probe observations.
//
// A probe's result is fully determined by its inputs (the oracle is a pure
// function of them plus seeded noise), so record and replay agree on a key by
// hashing the same effective inputs on both sides: the live harness
// (ClusterExperiment::Probe*) hashes what it passes to the PerfOracle when
// recording, and the replay environments hash what they *would* pass when
// looking the value up. Keys are FNV-1a 64 over the raw bit patterns, so two
// probes collide only when the oracle would have been asked the identical
// question — which is exactly when serving the recorded answer is sound.
#ifndef SRC_REPLAY_PROBE_KEY_H_
#define SRC_REPLAY_PROBE_KEY_H_

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

namespace mudi {
namespace replay {

// FNV-1a 64 over explicitly mixed-in words; byte-order independent of host
// (values are mixed little-endian byte by byte).
class KeyHasher {
 public:
  KeyHasher& Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xFF;
      hash_ *= 1099511628211ULL;
    }
    return *this;
  }
  KeyHasher& Mix(int64_t v) { return Mix(static_cast<uint64_t>(v)); }
  KeyHasher& Mix(int v) { return Mix(static_cast<uint64_t>(static_cast<int64_t>(v))); }
  KeyHasher& Mix(uint32_t v) { return Mix(static_cast<uint64_t>(v)); }
  KeyHasher& Mix(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    return Mix(bits);
  }

  uint64_t hash() const { return hash_; }

 private:
  uint64_t hash_ = 14695981039346656037ULL;
};

// (training type index, gpu fraction) pairs, in device residency order — both
// sides iterate the same trainings vector, so no canonicalization is needed.
using ColocationMix = std::vector<std::pair<uint32_t, double>>;

// Key for SchedulingEnv::ProbeInferenceLatencyMs. Inputs mirror the
// ObserveInferenceBatchLatency call plus the device's effective compute
// scale, which divides the returned latency.
inline uint64_t InferenceProbeKey(uint32_t service_index, int batch, double gpu_fraction,
                                  const ColocationMix& colocated,
                                  double effective_compute_scale) {
  KeyHasher h;
  h.Mix(uint64_t{1}).Mix(service_index).Mix(batch).Mix(gpu_fraction);
  h.Mix(static_cast<uint64_t>(colocated.size()));
  for (const auto& [type, fraction] : colocated) {
    h.Mix(type).Mix(fraction);
  }
  h.Mix(effective_compute_scale);
  return h.hash();
}

// Key for SchedulingEnv::ProbeTrainingIterMs. Inputs mirror the
// ObserveTrainingIterationMs call (task spec, clamped fraction, effective
// inference load including measured QPS, the other co-resident trainings)
// plus the two post-factors applied to the oracle's answer: the hypothetical
// swap slowdown and the device's effective compute scale.
inline uint64_t TrainingProbeKey(uint32_t type_index, double clamped_fraction,
                                 uint32_t load_service_index, int load_batch,
                                 double load_gpu_fraction, double load_qps,
                                 const ColocationMix& others, double swap_factor,
                                 double effective_compute_scale) {
  KeyHasher h;
  h.Mix(uint64_t{2}).Mix(type_index).Mix(clamped_fraction);
  h.Mix(load_service_index).Mix(load_batch).Mix(load_gpu_fraction).Mix(load_qps);
  h.Mix(static_cast<uint64_t>(others.size()));
  for (const auto& [type, fraction] : others) {
    h.Mix(type).Mix(fraction);
  }
  h.Mix(swap_factor).Mix(effective_compute_scale);
  return h.hash();
}

// Key for an interference-curve prediction request
// (InterferencePredictor::PredictCurve): service, batch, sorted type mix.
inline uint64_t PredictionKey(uint32_t service_index, int batch,
                              const std::vector<uint32_t>& sorted_mix) {
  KeyHasher h;
  h.Mix(uint64_t{3}).Mix(service_index).Mix(batch);
  h.Mix(static_cast<uint64_t>(sorted_mix.size()));
  for (uint32_t type : sorted_mix) h.Mix(type);
  return h.hash();
}

}  // namespace replay
}  // namespace mudi

#endif  // SRC_REPLAY_PROBE_KEY_H_
