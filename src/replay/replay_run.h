// Counterfactual replay (mode C): re-run the *decision stream* of a recorded
// trace against a different (or the same) policy, with NO simulation at all.
//
// The ReplayEnv reconstructs cluster state from the per-decision snapshots,
// serves monitor feedback from the recorded feedback stream, and answers
// what-if probes from the trace's content-addressed observations (falling
// back to a private PerfOracle on a miss). Each recorded decision is
// dispatched to the what-if policy's matching hook; the actions it takes are
// compared bitwise against the recorded ones, and the first divergent
// decision is reported. Because neither the data plane nor the event queue
// exists here, a counterfactual run costs only the policy's own decision
// arithmetic — the ≥5x what-if speedup the replay gate measures.
//
// State strictly tracks the *recorded* run: a diverging what-if choice is
// reported, but the next decision still replays from the recorded snapshot.
// That keeps every later comparison meaningful (first divergence is exact;
// later ones are "given the recorded history").
#ifndef SRC_REPLAY_REPLAY_RUN_H_
#define SRC_REPLAY_REPLAY_RUN_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cluster/policy.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/gpu/gpu_device.h"
#include "src/gpu/perf_oracle.h"
#include "src/replay/decision_recorder.h"
#include "src/replay/replay_source.h"

namespace mudi {
namespace replay {

struct WhatIfOptions {
  // Optional trace output for the what-if run (decisions + candidate sets,
  // no snapshots, no run summary): feed it to trace_diff against the source
  // trace. Not owned; the caller finishes it.
  DecisionRecorder* recorder = nullptr;
};

struct WhatIfResult {
  uint64_t decisions_replayed = 0;
  uint64_t diverged_decisions = 0;
  bool diverged = false;
  uint64_t first_divergence_seq = 0;
  std::string first_divergence_detail;
  // ReplaySource counters after the run: hit share proves how much of the
  // what-if was answered from the trace instead of recomputed.
  uint64_t probe_hits = 0;
  uint64_t probe_sticky_hits = 0;
  uint64_t probe_misses = 0;
};

// The SchedulingEnv a counterfactual policy runs against. Public mainly for
// tests; RunWhatIf drives it.
class ReplayEnv : public SchedulingEnv {
 public:
  // `source` outlives the env. `whatif_recorder` may be null.
  ReplayEnv(ReplaySource& source, DecisionRecorder* whatif_recorder);

  // --- stream driving (RunWhatIf) ---
  // Consumes feedback records with seq < bound into the per-device
  // latest-QPS/P99 registers.
  void AdvanceFeedback(uint64_t seq_bound);
  // Overwrites device state from the decision's snapshot (all devices or
  // just the target) and sets the env clock to the decision's sim time.
  void ApplyDecisionState(const TraceDecision& decision);
  // Actions the policy took since the last call (cleared on read).
  std::vector<TraceAction> TakeActions();

  // --- SchedulingEnv ---
  TimeMs Now() const override { return now_ms_; }
  std::vector<GpuDevice>& devices() override { return devices_; }
  const GpuDevice& device(int device_id) const override;
  const InferenceServiceSpec& ServiceOnDevice(int device_id) const override;
  double MeasuredQps(int device_id) override;
  double MeasuredP99(int device_id) override;
  double ProbeInferenceLatencyMs(int device_id, int batch, double gpu_fraction) override;
  double ProbeTrainingIterMs(int device_id, int task_id, double train_fraction, int inf_batch,
                             double inf_fraction) override;
  void ApplyInferenceConfig(int device_id, int batch, double gpu_fraction) override;
  void ApplyTrainingFraction(int device_id, int task_id, double fraction) override;
  void SetTrainingPaused(int device_id, int task_id, bool paused) override;
  bool CanFitTraining(int device_id, const TrainingTaskSpec& spec) const override;
  const PerfOracle& oracle() const override { return fallback_oracle_; }
  DecisionRecorder* recorder() override { return whatif_recorder_; }
  ReplaySource* replay() override { return &source_; }

 private:
  GpuDevice& mutable_device(int device_id);
  void RecordAction(ActionKind kind, int device_id, int arg, double value);

  ReplaySource& source_;
  DecisionRecorder* whatif_recorder_;
  std::vector<GpuDevice> devices_;
  std::vector<double> latest_qps_;
  std::vector<double> latest_p99_;
  size_t feedback_cursor_ = 0;
  TimeMs now_ms_ = 0.0;
  std::vector<TraceAction> actions_;
  // Probe-miss fallback: a private oracle seeded like the recorded run's,
  // with its own noise stream (misses are approximate by construction).
  PerfOracle fallback_oracle_;
  Rng fallback_rng_;
};

// Replays every recorded decision through `policy`. The policy must be
// freshly constructed (its Initialize runs against the trace's curve store).
StatusOr<WhatIfResult> RunWhatIf(ReplaySource& source, MultiplexPolicy& policy,
                                 const WhatIfOptions& options = {});

}  // namespace replay
}  // namespace mudi

#endif  // SRC_REPLAY_REPLAY_RUN_H_
