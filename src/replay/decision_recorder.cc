#include "src/replay/decision_recorder.h"

namespace mudi {
namespace replay {

namespace {
// Flush the in-memory buffer to disk once it exceeds this; large enough that
// record mode costs one write() per ~megabyte of trace, small enough to keep
// the recorder's resident footprint flat on multi-million-event runs.
constexpr size_t kFlushBytes = 1 << 20;
}  // namespace

SnapshotDevice MakeSnapshotDevice(const GpuDevice& dev) {
  SnapshotDevice out;
  out.device_id = dev.id();
  out.healthy = dev.healthy() ? 1 : 0;
  out.slowdown = dev.slowdown();
  out.has_inference = dev.has_inference() ? 1 : 0;
  if (dev.has_inference()) {
    const InferenceInstance& inf = dev.inference();
    out.service_index = static_cast<uint32_t>(inf.service_index);
    out.inf_batch = inf.batch_size;
    out.inf_fraction = inf.gpu_fraction;
    out.inf_mem_mb = inf.mem_required_mb;
  }
  out.trainings.reserve(dev.trainings().size());
  for (const TrainingInstance& t : dev.trainings()) {
    SnapshotTraining st;
    st.task_id = t.task_id;
    st.type_index = static_cast<uint32_t>(t.type_index);
    st.gpu_fraction = t.gpu_fraction;
    st.mem_required_mb = t.mem_required_mb;
    st.mem_swapped_mb = t.mem_swapped_mb;
    st.paused = t.paused ? 1 : 0;
    out.trainings.push_back(st);
  }
  return out;
}

StatusOr<std::unique_ptr<DecisionRecorder>> DecisionRecorder::Create(const std::string& path,
                                                                     const TraceHeader& header) {
  std::unique_ptr<DecisionRecorder> recorder(new DecisionRecorder(path, header));
  if (!recorder->out_) {
    return InvalidArgumentError("decision recorder: cannot open '" + path + "' for writing");
  }
  return recorder;
}

DecisionRecorder::DecisionRecorder(const std::string& path, const TraceHeader& header)
    : path_(path), out_(path, std::ios::binary | std::ios::trunc), writer_(header) {}

DecisionRecorder::~DecisionRecorder() {
  if (!finished_) {
    Status ignored = Close();
    (void)ignored;
  }
}

void DecisionRecorder::FlushIfLarge() {
  if (writer_.buffered_bytes() >= kFlushBytes) {
    std::string chunk = writer_.TakeBuffer();
    out_.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
  }
}

void DecisionRecorder::RecordDeviceTable(const std::vector<DeviceTableEntry>& table) {
  writer_.AppendDeviceTable(table);
  FlushIfLarge();
}

void DecisionRecorder::RecordCurve(const TraceCurve& curve) {
  writer_.AppendCurve(curve);
  FlushIfLarge();
}

void DecisionRecorder::RecordRunSummary(const TraceRunSummary& summary) {
  writer_.AppendRunSummary(summary);
  FlushIfLarge();
}

uint64_t DecisionRecorder::BeginDecision(HookKind hook, double sim_ms, int device_id, int task_id,
                                         int type_index) {
  MUDI_CHECK(!decision_open_);
  decision_open_ = true;
  current_ = TraceDecision{};
  current_.seq = next_seq_++;
  current_.sim_ms = sim_ms;
  current_.hook = static_cast<uint8_t>(hook);
  current_.device_id = device_id;
  current_.task_id = task_id;
  current_.type_index = type_index;
  return current_.seq;
}

void DecisionRecorder::AddSnapshotDevice(const SnapshotDevice& dev) {
  MUDI_CHECK(decision_open_);
  current_.snapshot.push_back(dev);
}

void DecisionRecorder::AddCandidate(int device_id, double score) {
  MUDI_CHECK(decision_open_);
  current_.candidates.push_back(TraceCandidate{device_id, score});
}

void DecisionRecorder::SetChosenDevice(int device_id) {
  MUDI_CHECK(decision_open_);
  current_.chosen_device = device_id;
}

void DecisionRecorder::AddDisplaced(int task_id, uint32_t type_index) {
  MUDI_CHECK(decision_open_);
  current_.displaced.emplace_back(task_id, type_index);
}

void DecisionRecorder::AddAction(ActionKind kind, int device_id, int arg, double value) {
  MUDI_CHECK(decision_open_);
  TraceAction a;
  a.kind = static_cast<uint8_t>(kind);
  a.device_id = device_id;
  a.arg = arg;
  a.value = value;
  current_.actions.push_back(a);
}

void DecisionRecorder::EndDecision(double wall_us) {
  MUDI_CHECK(decision_open_);
  current_.wall_us = wall_us;
  writer_.AppendDecision(current_);
  decision_open_ = false;
  ++decisions_recorded_;
  FlushIfLarge();
}

void DecisionRecorder::RecordObservation(ObsKind kind, double sim_ms, int device_id, uint64_t key,
                                         double value) {
  TraceObservation obs;
  obs.seq = next_seq_++;
  obs.sim_ms = sim_ms;
  obs.obs_kind = static_cast<uint8_t>(kind);
  obs.device_id = device_id;
  obs.key = key;
  obs.value = value;
  writer_.AppendObservation(obs);
  ++observations_recorded_;
  FlushIfLarge();
}

void DecisionRecorder::RecordPrediction(uint32_t service_index, int batch,
                                        const std::vector<uint32_t>& sorted_mix, double k1,
                                        double k2, double x0, double y0) {
  TracePrediction p;
  p.seq = next_seq_++;
  p.service_index = service_index;
  p.batch = batch;
  p.mix = sorted_mix;
  p.k1 = k1;
  p.k2 = k2;
  p.x0 = x0;
  p.y0 = y0;
  writer_.AppendPrediction(p);
  FlushIfLarge();
}

void DecisionRecorder::RecordQpsFeedback(double sim_ms, int device_id, bool is_p99, double value) {
  TraceQpsFeedback f;
  f.seq = next_seq_++;
  f.sim_ms = sim_ms;
  f.device_id = device_id;
  f.is_p99 = is_p99 ? 1 : 0;
  f.value = value;
  writer_.AppendQpsFeedback(f);
  FlushIfLarge();
}

Status DecisionRecorder::Close() {
  if (finished_) {
    return Status::Ok();
  }
  finished_ = true;
  MUDI_CHECK(!decision_open_);
  writer_.Finish();
  std::string rest = writer_.TakeBuffer();
  out_.write(rest.data(), static_cast<std::streamsize>(rest.size()));
  out_.close();
  if (!out_) {
    return InternalError("decision recorder: write to '" + path_ + "' failed");
  }
  return Status::Ok();
}

}  // namespace replay
}  // namespace mudi
