#include "src/replay/decision_trace.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

namespace mudi {
namespace replay {

const char* HookName(HookKind hook) {
  switch (hook) {
    case HookKind::kInitialize:
      return "initialize";
    case HookKind::kSelectDevice:
      return "select_device";
    case HookKind::kOnTrainingPlaced:
      return "on_training_placed";
    case HookKind::kOnTrainingCompleted:
      return "on_training_completed";
    case HookKind::kOnQpsChange:
      return "on_qps_change";
    case HookKind::kOnDeviceFailed:
      return "on_device_failed";
    case HookKind::kOnDeviceRecovered:
      return "on_device_recovered";
    case HookKind::kOnControlPlaneRestart:
      return "on_control_plane_restart";
  }
  return "unknown";
}

const char* ActionName(ActionKind action) {
  switch (action) {
    case ActionKind::kApplyInferenceConfig:
      return "apply_inference_config";
    case ActionKind::kApplyTrainingFraction:
      return "apply_training_fraction";
    case ActionKind::kSetTrainingPaused:
      return "set_training_paused";
  }
  return "unknown";
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

Status RequireString(const perf::JsonValue& root, const std::string& key) {
  const perf::JsonValue* v = root.Find(key);
  if (v == nullptr || !v->is_string()) {
    return InvalidArgumentError("decision trace header: missing string field '" + key + "'");
  }
  return Status::Ok();
}

Status RequireNonNegativeInteger(const perf::JsonValue& root, const std::string& key) {
  const perf::JsonValue* v = root.Find(key);
  if (v == nullptr || !v->is_number()) {
    return InvalidArgumentError("decision trace header: missing numeric field '" + key + "'");
  }
  double n = v->number();
  if (n < 0.0 || n != static_cast<double>(static_cast<uint64_t>(n))) {
    return InvalidArgumentError("decision trace header: field '" + key +
                                "' must be a non-negative integer");
  }
  return Status::Ok();
}

}  // namespace

Status ValidateDecisionTraceHeader(const perf::JsonValue& root) {
  if (!root.is_object()) {
    return InvalidArgumentError("decision trace header: not a JSON object");
  }
  const perf::JsonValue* schema = root.Find("schema");
  if (schema == nullptr || !schema->is_string() || schema->string() != kDecisionTraceSchema) {
    return InvalidArgumentError(std::string("decision trace header: schema must be '") +
                                kDecisionTraceSchema + "'");
  }
  MUDI_RETURN_IF_ERROR(RequireString(root, "policy"));
  if (root.Find("policy")->string().empty()) {
    return InvalidArgumentError("decision trace header: 'policy' must be non-empty");
  }
  MUDI_RETURN_IF_ERROR(RequireString(root, "mode"));
  const std::string& mode = root.Find("mode")->string();
  if (mode != "record" && mode != "counterfactual") {
    return InvalidArgumentError("decision trace header: mode must be 'record' or 'counterfactual'");
  }
  MUDI_RETURN_IF_ERROR(RequireString(root, "base_policy"));
  for (const char* key : {"seed", "oracle_seed", "num_devices", "num_services", "service_offset"}) {
    MUDI_RETURN_IF_ERROR(RequireNonNegativeInteger(root, key));
  }
  return Status::Ok();
}

std::string EncodeTraceHeader(const TraceHeader& header) {
  std::ostringstream out;
  out << "{\"schema\":\"" << JsonEscape(header.schema) << "\""
      << ",\"policy\":\"" << JsonEscape(header.policy) << "\""
      << ",\"mode\":\"" << JsonEscape(header.mode) << "\""
      << ",\"base_policy\":\"" << JsonEscape(header.base_policy) << "\""
      << ",\"seed\":" << header.seed << ",\"oracle_seed\":" << header.oracle_seed
      << ",\"num_devices\":" << header.num_devices << ",\"num_services\":" << header.num_services
      << ",\"service_offset\":" << header.service_offset << "}";
  return out.str();
}

StatusOr<TraceHeader> DecodeTraceHeader(const std::string& line) {
  StatusOr<perf::JsonValue> parsed = perf::ParseJson(line);
  if (!parsed.ok()) {
    return Status(parsed.status().code(),
                  "decision trace header: " + parsed.status().message());
  }
  MUDI_RETURN_IF_ERROR(ValidateDecisionTraceHeader(*parsed));
  TraceHeader header;
  header.schema = parsed->Find("schema")->string();
  header.policy = parsed->Find("policy")->string();
  header.mode = parsed->Find("mode")->string();
  header.base_policy = parsed->Find("base_policy")->string();
  header.seed = static_cast<uint64_t>(parsed->Find("seed")->number());
  header.oracle_seed = static_cast<uint64_t>(parsed->Find("oracle_seed")->number());
  header.num_devices = static_cast<uint32_t>(parsed->Find("num_devices")->number());
  header.num_services = static_cast<uint32_t>(parsed->Find("num_services")->number());
  header.service_offset = static_cast<uint32_t>(parsed->Find("service_offset")->number());
  return header;
}

// --- TraceWriter -------------------------------------------------------------

TraceWriter::TraceWriter(const TraceHeader& header) {
  buffer_ = EncodeTraceHeader(header);
  buffer_ += '\n';
}

void TraceWriter::U8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }

void TraceWriter::U32(uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  buffer_.append(bytes, 4);
}

void TraceWriter::I32(int32_t v) { U32(static_cast<uint32_t>(v)); }

void TraceWriter::U64(uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  buffer_.append(bytes, 8);
}

void TraceWriter::F64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void TraceWriter::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  buffer_.append(s);
}

void TraceWriter::BeginRecord(RecordKind kind) {
  MUDI_CHECK(!finished_);
  MUDI_CHECK(!in_record_);
  in_record_ = true;
  record_start_ = buffer_.size();
  U32(0);  // payload length, patched in EndRecord
  U8(static_cast<uint8_t>(kind));
}

void TraceWriter::EndRecord() {
  MUDI_CHECK(in_record_);
  // Payload length excludes the 4-byte length field and the kind byte.
  uint32_t payload_len = static_cast<uint32_t>(buffer_.size() - record_start_ - 5);
  for (int i = 0; i < 4; ++i) {
    buffer_[record_start_ + i] = static_cast<char>((payload_len >> (8 * i)) & 0xFF);
  }
  in_record_ = false;
  ++records_written_;
}

void TraceWriter::AppendDeviceTable(const std::vector<DeviceTableEntry>& table) {
  BeginRecord(RecordKind::kDeviceTable);
  U32(static_cast<uint32_t>(table.size()));
  for (const DeviceTableEntry& d : table) {
    I32(d.device_id);
    U32(d.service_index);
    F64(d.memory_mb);
    F64(d.compute_scale);
  }
  EndRecord();
}

void TraceWriter::AppendCurve(const TraceCurve& curve) {
  BeginRecord(RecordKind::kCurve);
  U32(curve.service_index);
  I32(curve.batch);
  U32(static_cast<uint32_t>(curve.training_types.size()));
  for (uint32_t t : curve.training_types) U32(t);
  F64(curve.k1);
  F64(curve.k2);
  F64(curve.x0);
  F64(curve.y0);
  U32(static_cast<uint32_t>(curve.sample_fractions.size()));
  for (double f : curve.sample_fractions) F64(f);
  U32(static_cast<uint32_t>(curve.sample_latencies.size()));
  for (double l : curve.sample_latencies) F64(l);
  EndRecord();
}

void TraceWriter::AppendPrediction(const TracePrediction& prediction) {
  BeginRecord(RecordKind::kPrediction);
  U64(prediction.seq);
  U32(prediction.service_index);
  I32(prediction.batch);
  U32(static_cast<uint32_t>(prediction.mix.size()));
  for (uint32_t t : prediction.mix) U32(t);
  F64(prediction.k1);
  F64(prediction.k2);
  F64(prediction.x0);
  F64(prediction.y0);
  EndRecord();
}

void TraceWriter::AppendObservation(const TraceObservation& obs) {
  BeginRecord(RecordKind::kObservation);
  U64(obs.seq);
  F64(obs.sim_ms);
  U8(obs.obs_kind);
  I32(obs.device_id);
  U64(obs.key);
  F64(obs.value);
  EndRecord();
}

void TraceWriter::AppendQpsFeedback(const TraceQpsFeedback& feedback) {
  BeginRecord(RecordKind::kQpsFeedback);
  U64(feedback.seq);
  F64(feedback.sim_ms);
  I32(feedback.device_id);
  U8(feedback.is_p99);
  F64(feedback.value);
  EndRecord();
}

void TraceWriter::AppendDecision(const TraceDecision& decision) {
  BeginRecord(RecordKind::kDecision);
  U64(decision.seq);
  F64(decision.sim_ms);
  U8(decision.hook);
  I32(decision.device_id);
  I32(decision.task_id);
  I32(decision.type_index);
  I32(decision.chosen_device);
  F64(decision.wall_us);
  U32(static_cast<uint32_t>(decision.displaced.size()));
  for (const auto& [task, type] : decision.displaced) {
    I32(task);
    U32(type);
  }
  U32(static_cast<uint32_t>(decision.actions.size()));
  for (const TraceAction& a : decision.actions) {
    U8(a.kind);
    I32(a.device_id);
    I32(a.arg);
    F64(a.value);
  }
  U32(static_cast<uint32_t>(decision.candidates.size()));
  for (const TraceCandidate& c : decision.candidates) {
    I32(c.device_id);
    F64(c.score);
  }
  U32(static_cast<uint32_t>(decision.snapshot.size()));
  for (const SnapshotDevice& d : decision.snapshot) {
    I32(d.device_id);
    U8(d.healthy);
    F64(d.slowdown);
    U8(d.has_inference);
    U32(d.service_index);
    I32(d.inf_batch);
    F64(d.inf_fraction);
    F64(d.inf_mem_mb);
    U32(static_cast<uint32_t>(d.trainings.size()));
    for (const SnapshotTraining& t : d.trainings) {
      I32(t.task_id);
      U32(t.type_index);
      F64(t.gpu_fraction);
      F64(t.mem_required_mb);
      F64(t.mem_swapped_mb);
      U8(t.paused);
    }
  }
  EndRecord();
}

void TraceWriter::AppendRunSummary(const TraceRunSummary& summary) {
  BeginRecord(RecordKind::kRunSummary);
  F64(summary.makespan_ms);
  U64(summary.tasks_completed);
  U32(static_cast<uint32_t>(summary.services.size()));
  for (const TraceServiceSummary& s : summary.services) {
    Str(s.service);
    U64(s.windows_total);
    U64(s.windows_violated);
    U64(s.windows_violated_failure);
    F64(s.served_requests);
    F64(s.mean_latency_ms);
  }
  EndRecord();
}

void TraceWriter::Finish() {
  MUDI_CHECK(!finished_);
  uint64_t count = records_written_;
  BeginRecord(RecordKind::kEnd);
  U64(count);
  EndRecord();
  finished_ = true;
}

std::string TraceWriter::TakeBuffer() {
  std::string out = std::move(buffer_);
  buffer_.clear();
  record_start_ = 0;
  return out;
}

// --- reader ------------------------------------------------------------------

namespace {

// Bounds-checked little-endian cursor over one record payload. Any read past
// the end sets `failed` and returns zero; the caller checks Done() once after
// decoding the full payload.
class Cursor {
 public:
  Cursor(const char* data, size_t size) : data_(data), size_(size) {}

  uint8_t U8() {
    if (pos_ + 1 > size_) return Fail();
    return static_cast<uint8_t>(data_[pos_++]);
  }
  uint32_t U32() {
    if (pos_ + 4 > size_) return Fail();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    pos_ += 4;
    return v;
  }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  uint64_t U64() {
    if (pos_ + 8 > size_) return Fail();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    pos_ += 8;
    return v;
  }
  double F64() {
    uint64_t bits = U64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str() {
    uint32_t len = U32();
    if (failed_ || pos_ + len > size_) {
      Fail();
      return std::string();
    }
    std::string s(data_ + pos_, len);
    pos_ += len;
    return s;
  }

  bool failed() const { return failed_; }
  // True iff every payload byte was consumed with no over-run.
  bool Done() const { return !failed_ && pos_ == size_; }

 private:
  uint8_t Fail() {
    failed_ = true;
    return 0;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

Status CorruptError(const std::string& origin, uint64_t record_index, const std::string& what) {
  return InvalidArgumentError("decision trace '" + origin + "': corrupt record #" +
                              std::to_string(record_index) + ": " + what);
}

}  // namespace

StatusOr<DecisionTrace> ParseDecisionTrace(const std::string& bytes, const std::string& origin) {
  size_t newline = bytes.find('\n');
  if (newline == std::string::npos) {
    return InvalidArgumentError("decision trace '" + origin + "': missing header line");
  }
  StatusOr<TraceHeader> header = DecodeTraceHeader(bytes.substr(0, newline));
  if (!header.ok()) {
    return Status(header.status().code(), "decision trace '" + origin + "': " + header.status().message());
  }

  DecisionTrace trace;
  trace.header = std::move(*header);

  size_t pos = newline + 1;
  uint64_t record_index = 0;
  bool saw_end = false;
  while (pos < bytes.size()) {
    if (saw_end) {
      return CorruptError(origin, record_index, "trailing bytes after end-of-trace marker");
    }
    if (pos + 5 > bytes.size()) {
      return InvalidArgumentError("decision trace '" + origin + "': truncated record frame at byte " +
                                  std::to_string(pos));
    }
    uint32_t payload_len = 0;
    for (int i = 0; i < 4; ++i) {
      payload_len |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[pos + i])) << (8 * i);
    }
    uint8_t kind_byte = static_cast<uint8_t>(bytes[pos + 4]);
    pos += 5;
    if (pos + payload_len > bytes.size()) {
      return InvalidArgumentError("decision trace '" + origin + "': truncated payload in record #" +
                                  std::to_string(record_index));
    }
    Cursor cur(bytes.data() + pos, payload_len);
    pos += payload_len;

    switch (static_cast<RecordKind>(kind_byte)) {
      case RecordKind::kDeviceTable: {
        uint32_t n = cur.U32();
        for (uint32_t i = 0; i < n && !cur.failed(); ++i) {
          DeviceTableEntry d;
          d.device_id = cur.I32();
          d.service_index = cur.U32();
          d.memory_mb = cur.F64();
          d.compute_scale = cur.F64();
          trace.device_table.push_back(d);
        }
        break;
      }
      case RecordKind::kCurve: {
        TraceCurve c;
        c.service_index = cur.U32();
        c.batch = cur.I32();
        uint32_t nt = cur.U32();
        for (uint32_t i = 0; i < nt && !cur.failed(); ++i) c.training_types.push_back(cur.U32());
        c.k1 = cur.F64();
        c.k2 = cur.F64();
        c.x0 = cur.F64();
        c.y0 = cur.F64();
        uint32_t nf = cur.U32();
        for (uint32_t i = 0; i < nf && !cur.failed(); ++i) c.sample_fractions.push_back(cur.F64());
        uint32_t nl = cur.U32();
        for (uint32_t i = 0; i < nl && !cur.failed(); ++i) c.sample_latencies.push_back(cur.F64());
        trace.curves.push_back(std::move(c));
        break;
      }
      case RecordKind::kPrediction: {
        TracePrediction p;
        p.seq = cur.U64();
        p.service_index = cur.U32();
        p.batch = cur.I32();
        uint32_t nm = cur.U32();
        for (uint32_t i = 0; i < nm && !cur.failed(); ++i) p.mix.push_back(cur.U32());
        p.k1 = cur.F64();
        p.k2 = cur.F64();
        p.x0 = cur.F64();
        p.y0 = cur.F64();
        trace.predictions.push_back(std::move(p));
        break;
      }
      case RecordKind::kObservation: {
        TraceObservation o;
        o.seq = cur.U64();
        o.sim_ms = cur.F64();
        o.obs_kind = cur.U8();
        o.device_id = cur.I32();
        o.key = cur.U64();
        o.value = cur.F64();
        trace.observations.push_back(o);
        break;
      }
      case RecordKind::kQpsFeedback: {
        TraceQpsFeedback q;
        q.seq = cur.U64();
        q.sim_ms = cur.F64();
        q.device_id = cur.I32();
        q.is_p99 = cur.U8();
        q.value = cur.F64();
        trace.qps_feedback.push_back(q);
        break;
      }
      case RecordKind::kDecision: {
        TraceDecision d;
        d.seq = cur.U64();
        d.sim_ms = cur.F64();
        d.hook = cur.U8();
        d.device_id = cur.I32();
        d.task_id = cur.I32();
        d.type_index = cur.I32();
        d.chosen_device = cur.I32();
        d.wall_us = cur.F64();
        uint32_t nd = cur.U32();
        for (uint32_t i = 0; i < nd && !cur.failed(); ++i) {
          int32_t task = cur.I32();
          uint32_t type = cur.U32();
          d.displaced.emplace_back(task, type);
        }
        uint32_t na = cur.U32();
        for (uint32_t i = 0; i < na && !cur.failed(); ++i) {
          TraceAction a;
          a.kind = cur.U8();
          a.device_id = cur.I32();
          a.arg = cur.I32();
          a.value = cur.F64();
          d.actions.push_back(a);
        }
        uint32_t nc = cur.U32();
        for (uint32_t i = 0; i < nc && !cur.failed(); ++i) {
          TraceCandidate c;
          c.device_id = cur.I32();
          c.score = cur.F64();
          d.candidates.push_back(c);
        }
        uint32_t ns = cur.U32();
        for (uint32_t i = 0; i < ns && !cur.failed(); ++i) {
          SnapshotDevice dev;
          dev.device_id = cur.I32();
          dev.healthy = cur.U8();
          dev.slowdown = cur.F64();
          dev.has_inference = cur.U8();
          dev.service_index = cur.U32();
          dev.inf_batch = cur.I32();
          dev.inf_fraction = cur.F64();
          dev.inf_mem_mb = cur.F64();
          uint32_t ntr = cur.U32();
          for (uint32_t j = 0; j < ntr && !cur.failed(); ++j) {
            SnapshotTraining t;
            t.task_id = cur.I32();
            t.type_index = cur.U32();
            t.gpu_fraction = cur.F64();
            t.mem_required_mb = cur.F64();
            t.mem_swapped_mb = cur.F64();
            t.paused = cur.U8();
            dev.trainings.push_back(t);
          }
          d.snapshot.push_back(std::move(dev));
        }
        trace.decisions.push_back(std::move(d));
        break;
      }
      case RecordKind::kRunSummary: {
        TraceRunSummary s;
        s.makespan_ms = cur.F64();
        s.tasks_completed = cur.U64();
        uint32_t n = cur.U32();
        for (uint32_t i = 0; i < n && !cur.failed(); ++i) {
          TraceServiceSummary svc;
          svc.service = cur.Str();
          svc.windows_total = cur.U64();
          svc.windows_violated = cur.U64();
          svc.windows_violated_failure = cur.U64();
          svc.served_requests = cur.F64();
          svc.mean_latency_ms = cur.F64();
          s.services.push_back(std::move(svc));
        }
        trace.summary = std::move(s);
        break;
      }
      case RecordKind::kEnd: {
        uint64_t declared = cur.U64();
        if (cur.failed() || !cur.Done()) {
          return CorruptError(origin, record_index, "malformed end-of-trace marker");
        }
        if (declared != record_index) {
          return CorruptError(origin, record_index,
                              "end-of-trace marker declares " + std::to_string(declared) +
                                  " records but " + std::to_string(record_index) + " were present");
        }
        saw_end = true;
        trace.total_records = declared;
        continue;  // record_index counts data records only
      }
      default:
        return CorruptError(origin, record_index,
                            "unknown record kind " + std::to_string(kind_byte));
    }
    if (!cur.Done()) {
      return CorruptError(origin, record_index, "payload length mismatch for record kind " +
                                                    std::to_string(kind_byte));
    }
    ++record_index;
  }
  if (!saw_end) {
    return InvalidArgumentError("decision trace '" + origin +
                                "': truncated (missing end-of-trace marker)");
  }
  return trace;
}

StatusOr<DecisionTrace> ReadDecisionTrace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("decision trace: cannot open '" + path + "'");
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  return ParseDecisionTrace(contents.str(), path);
}

std::string SummarizeDecisionTrace(const DecisionTrace& trace, size_t top_n) {
  std::ostringstream out;
  out << "decision trace (" << trace.header.schema << ")\n";
  out << "  policy:         " << trace.header.policy;
  if (trace.header.mode == "counterfactual") {
    out << " (counterfactual over " << trace.header.base_policy << " trace)";
  }
  out << "\n";
  out << "  seed:           " << trace.header.seed << " (oracle " << trace.header.oracle_seed
      << ")\n";
  out << "  topology:       " << trace.header.num_devices << " devices, "
      << trace.header.num_services << " services\n";
  out << "  records:        " << trace.total_records << " (" << trace.curves.size() << " curves, "
      << trace.predictions.size() << " predictions, " << trace.observations.size()
      << " observations, " << trace.qps_feedback.size() << " feedback reads, "
      << trace.decisions.size() << " decisions)\n";

  uint64_t per_hook[kNumHookKinds] = {};
  std::map<int32_t, uint64_t> selections;
  uint64_t with_snapshot = 0;
  for (const TraceDecision& d : trace.decisions) {
    if (d.hook < kNumHookKinds) ++per_hook[d.hook];
    if (static_cast<HookKind>(d.hook) == HookKind::kSelectDevice && d.chosen_device >= 0) {
      ++selections[d.chosen_device];
    }
    if (!d.snapshot.empty()) ++with_snapshot;
  }
  out << "  decisions by hook:\n";
  for (size_t h = 0; h < kNumHookKinds; ++h) {
    if (per_hook[h] == 0) continue;
    out << "    " << HookName(static_cast<HookKind>(h)) << ": " << per_hook[h] << "\n";
  }
  if (!selections.empty()) {
    std::vector<std::pair<int32_t, uint64_t>> ranked(selections.begin(), selections.end());
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    out << "  top devices by selection:\n";
    for (size_t i = 0; i < ranked.size() && i < top_n; ++i) {
      out << "    device " << ranked[i].first << ": " << ranked[i].second << " placements\n";
    }
  }
  if (!trace.decisions.empty()) {
    double coverage = 100.0 * static_cast<double>(with_snapshot) /
                      static_cast<double>(trace.decisions.size());
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", coverage);
    out << "  replay coverage: " << buf << "% of decisions carry a state snapshot\n";
  }
  if (trace.summary.has_value()) {
    const TraceRunSummary& s = *trace.summary;
    uint64_t total = 0, violated = 0;
    for (const TraceServiceSummary& svc : s.services) {
      total += svc.windows_total;
      violated += svc.windows_violated;
    }
    out << "  outcome:        " << s.tasks_completed << " tasks, makespan " << s.makespan_ms
        << " ms, " << violated << "/" << total << " SLO windows violated\n";
  }
  return out.str();
}

}  // namespace replay
}  // namespace mudi
