#include "src/replay/replay_run.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <utility>

#include "src/common/check.h"
#include "src/common/wallclock.h"
#include "src/replay/probe_key.h"
#include "src/workload/models.h"

namespace mudi {
namespace replay {

namespace {

// Seed tag for the probe-miss fallback stream: a miss means the recorded run
// never asked this exact question, so any fixed independent stream is as
// honest as another — but it must not alias the recorded run's streams.
constexpr uint64_t kFallbackRngTag = 0x7265706c61796673ull;  // "replayfs"

std::string FormatChoiceDivergence(const TraceDecision& recorded, int whatif_choice) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "decision seq %llu (SelectDevice task %d): recorded chose device %d, "
                "what-if chose device %d",
                static_cast<unsigned long long>(recorded.seq), recorded.task_id,
                recorded.chosen_device, whatif_choice);
  return buf;
}

std::string FormatActionDivergence(const TraceDecision& recorded,
                                   const std::vector<TraceAction>& whatif) {
  char buf[224];
  size_t n = std::min(recorded.actions.size(), whatif.size());
  for (size_t i = 0; i < n; ++i) {
    const TraceAction& a = recorded.actions[i];
    const TraceAction& b = whatif[i];
    if (a.kind != b.kind || a.device_id != b.device_id || a.arg != b.arg || a.value != b.value) {
      std::snprintf(buf, sizeof(buf),
                    "decision seq %llu (%s): action %zu differs — recorded %s(dev=%d, arg=%d, "
                    "value=%.6g), what-if %s(dev=%d, arg=%d, value=%.6g)",
                    static_cast<unsigned long long>(recorded.seq),
                    HookName(static_cast<HookKind>(recorded.hook)), i,
                    ActionName(static_cast<ActionKind>(a.kind)), a.device_id, a.arg, a.value,
                    ActionName(static_cast<ActionKind>(b.kind)), b.device_id, b.arg, b.value);
      return buf;
    }
  }
  std::snprintf(buf, sizeof(buf),
                "decision seq %llu (%s): recorded %zu action(s), what-if %zu action(s)",
                static_cast<unsigned long long>(recorded.seq),
                HookName(static_cast<HookKind>(recorded.hook)), recorded.actions.size(),
                whatif.size());
  return buf;
}

bool SameActions(const std::vector<TraceAction>& a, const std::vector<TraceAction>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].kind != b[i].kind || a[i].device_id != b[i].device_id || a[i].arg != b[i].arg ||
        a[i].value != b[i].value) {
      return false;
    }
  }
  return true;
}

}  // namespace

ReplayEnv::ReplayEnv(ReplaySource& source, DecisionRecorder* whatif_recorder)
    : source_(source),
      whatif_recorder_(whatif_recorder),
      fallback_oracle_(source.trace().header.oracle_seed),
      fallback_rng_(Rng(source.trace().header.seed).Fork(kFallbackRngTag)) {
  const DecisionTrace& trace = source_.trace();
  devices_.reserve(trace.device_table.size());
  for (const DeviceTableEntry& entry : trace.device_table) {
    GpuDevice dev(entry.device_id, entry.memory_mb, entry.compute_scale);
    // Placeholder replica; the first decision's snapshot (kInitialize carries
    // a full-cluster snapshot) overwrites batch/fraction with recorded state.
    InferenceInstance inst;
    inst.service_index = entry.service_index;
    inst.batch_size = 1;
    inst.gpu_fraction = 0.5;
    inst.mem_required_mb =
        InferenceMemoryMb(ModelZoo::InferenceServices()[entry.service_index], 1);
    dev.PlaceInference(inst);
    devices_.push_back(std::move(dev));
  }
  latest_qps_.assign(devices_.size(), 0.0);
  latest_p99_.assign(devices_.size(), 0.0);
}

void ReplayEnv::AdvanceFeedback(uint64_t seq_bound) {
  const auto& feedback = source_.trace().qps_feedback;
  while (feedback_cursor_ < feedback.size() && feedback[feedback_cursor_].seq < seq_bound) {
    const TraceQpsFeedback& f = feedback[feedback_cursor_];
    if (f.device_id >= 0 && static_cast<size_t>(f.device_id) < devices_.size()) {
      if (f.is_p99 != 0) {
        latest_p99_[static_cast<size_t>(f.device_id)] = f.value;
      } else {
        latest_qps_[static_cast<size_t>(f.device_id)] = f.value;
      }
    }
    ++feedback_cursor_;
  }
}

void ReplayEnv::ApplyDecisionState(const TraceDecision& decision) {
  now_ms_ = decision.sim_ms;
  for (const SnapshotDevice& s : decision.snapshot) {
    GpuDevice& dev = mutable_device(s.device_id);
    dev.SetHealthy(s.healthy != 0);
    dev.SetSlowdown(s.slowdown);
    if (s.has_inference != 0) {
      InferenceInstance inst;
      inst.service_index = s.service_index;
      inst.batch_size = s.inf_batch;
      inst.gpu_fraction = s.inf_fraction;
      inst.mem_required_mb = s.inf_mem_mb;
      if (dev.has_inference()) {
        dev.mutable_inference() = inst;
      } else {
        dev.PlaceInference(inst);
      }
    } else if (dev.has_inference()) {
      dev.RemoveInference();
    }
    std::vector<TrainingInstance> trainings;
    trainings.reserve(s.trainings.size());
    for (const SnapshotTraining& t : s.trainings) {
      TrainingInstance inst;
      inst.task_id = t.task_id;
      inst.type_index = t.type_index;
      inst.gpu_fraction = t.gpu_fraction;
      inst.mem_required_mb = t.mem_required_mb;
      inst.mem_swapped_mb = t.mem_swapped_mb;
      inst.paused = t.paused != 0;
      trainings.push_back(inst);
    }
    dev.mutable_trainings() = std::move(trainings);
  }
}

std::vector<TraceAction> ReplayEnv::TakeActions() {
  std::vector<TraceAction> out = std::move(actions_);
  actions_.clear();
  return out;
}

const GpuDevice& ReplayEnv::device(int device_id) const {
  MUDI_CHECK_GE(device_id, 0);
  MUDI_CHECK_LT(static_cast<size_t>(device_id), devices_.size());
  return devices_[static_cast<size_t>(device_id)];
}

GpuDevice& ReplayEnv::mutable_device(int device_id) {
  MUDI_CHECK_GE(device_id, 0);
  MUDI_CHECK_LT(static_cast<size_t>(device_id), devices_.size());
  return devices_[static_cast<size_t>(device_id)];
}

const InferenceServiceSpec& ReplayEnv::ServiceOnDevice(int device_id) const {
  return ModelZoo::InferenceServices()[device(device_id).inference().service_index];
}

double ReplayEnv::MeasuredQps(int device_id) {
  double qps = latest_qps_[static_cast<size_t>(device_id)];
  if (whatif_recorder_ != nullptr && whatif_recorder_->decision_open()) {
    whatif_recorder_->RecordQpsFeedback(now_ms_, device_id, /*is_p99=*/false, qps);
  }
  return qps;
}

double ReplayEnv::MeasuredP99(int device_id) {
  double p99 = latest_p99_[static_cast<size_t>(device_id)];
  if (whatif_recorder_ != nullptr && whatif_recorder_->decision_open()) {
    whatif_recorder_->RecordQpsFeedback(now_ms_, device_id, /*is_p99=*/true, p99);
  }
  return p99;
}

double ReplayEnv::ProbeInferenceLatencyMs(int device_id, int batch, double gpu_fraction) {
  const GpuDevice& dev = device(device_id);
  ColocationMix mix;
  mix.reserve(dev.trainings().size());
  for (const TrainingInstance& t : dev.trainings()) {
    if (!t.paused) {
      mix.emplace_back(static_cast<uint32_t>(t.type_index), t.gpu_fraction);
    }
  }
  uint64_t key = InferenceProbeKey(static_cast<uint32_t>(dev.inference().service_index), batch,
                                   gpu_fraction, mix, dev.EffectiveComputeScale());
  if (auto recorded = source_.TakeObservation(key)) {
    return *recorded;
  }
  // Miss: the recorded run never asked this question (the counterfactual
  // policy diverged into unexplored configurations). Answer from a private
  // oracle seeded like the recorded one — approximate, but ground-truth
  // shaped, which is the best an offline what-if can do.
  const auto& tasks = ModelZoo::TrainingTasks();
  std::vector<ColocatedTraining> colocated;
  colocated.reserve(mix.size());
  for (const TrainingInstance& t : dev.trainings()) {
    if (!t.paused) {
      colocated.push_back(ColocatedTraining{&tasks[t.type_index], t.gpu_fraction});
    }
  }
  double lat = fallback_oracle_
                   .ObserveInferenceBatchLatency(ServiceOnDevice(device_id), batch, gpu_fraction,
                                                 colocated, fallback_rng_)
                   .total_ms();
  return lat / dev.EffectiveComputeScale();
}

double ReplayEnv::ProbeTrainingIterMs(int device_id, int task_id, double train_fraction,
                                      int inf_batch, double inf_fraction) {
  const GpuDevice& dev = device(device_id);
  const TrainingInstance* instance = dev.FindTraining(task_id);
  MUDI_CHECK(instance != nullptr);
  const auto& tasks = ModelZoo::TrainingTasks();
  const TrainingTaskSpec& spec = tasks[instance->type_index];

  InferenceLoad load;
  load.spec = &ServiceOnDevice(device_id);
  load.batch_size = inf_batch > 0 ? inf_batch : dev.inference().batch_size;
  load.gpu_fraction = inf_fraction > 0.0 ? inf_fraction : dev.inference().gpu_fraction;
  // The recorded run keyed probes on the monitor QPS at decision time, which
  // is exactly the value the policy read as feedback inside the decision —
  // the feedback cursor has already advanced past those reads.
  load.qps = latest_qps_[static_cast<size_t>(device_id)];

  double frac = train_fraction > 0.0 ? train_fraction : instance->gpu_fraction;
  double clamped = std::clamp(frac, 0.02, 1.0);

  // Mirror the live harness's hypothetical-swap construction exactly: the
  // probe key embeds the swap factor, so any deviation here would turn
  // recorded hits into misses.
  TrainingInstance hypothetical = *instance;
  if (inf_batch > 0) {
    double inf_mem = InferenceMemoryMb(*load.spec, inf_batch);
    double required = inf_mem;
    for (const TrainingInstance& t : dev.trainings()) {
      required += t.mem_required_mb;
    }
    double deficit = std::max(0.0, required - dev.memory_mb());
    hypothetical.mem_swapped_mb = std::min(deficit, 0.85 * instance->mem_required_mb);
  }
  double swap_factor = SwapSlowdownFactor(hypothetical);

  ColocationMix others_mix;
  std::vector<ColocatedTraining> others;
  for (const TrainingInstance& t : dev.trainings()) {
    if (!t.paused && t.task_id != task_id) {
      others_mix.emplace_back(static_cast<uint32_t>(t.type_index), t.gpu_fraction);
      others.push_back(ColocatedTraining{&tasks[t.type_index], t.gpu_fraction});
    }
  }
  uint64_t key = TrainingProbeKey(static_cast<uint32_t>(instance->type_index), clamped,
                                  static_cast<uint32_t>(dev.inference().service_index),
                                  load.batch_size, load.gpu_fraction, load.qps, others_mix,
                                  swap_factor, dev.EffectiveComputeScale());
  if (auto recorded = source_.TakeObservation(key)) {
    return *recorded;
  }
  double iter = fallback_oracle_.ObserveTrainingIterationMs(spec, clamped, load, others,
                                                            fallback_rng_);
  return iter * swap_factor / dev.EffectiveComputeScale();
}

void ReplayEnv::RecordAction(ActionKind kind, int device_id, int arg, double value) {
  TraceAction action;
  action.kind = static_cast<uint8_t>(kind);
  action.device_id = device_id;
  action.arg = arg;
  action.value = value;
  actions_.push_back(action);
  if (whatif_recorder_ != nullptr && whatif_recorder_->decision_open()) {
    whatif_recorder_->AddAction(kind, device_id, arg, value);
  }
}

void ReplayEnv::ApplyInferenceConfig(int device_id, int batch, double gpu_fraction) {
  MUDI_CHECK_GT(batch, 0);
  MUDI_CHECK_GT(gpu_fraction, 0.0);
  MUDI_CHECK_LE(gpu_fraction, 1.0);
  RecordAction(ActionKind::kApplyInferenceConfig, device_id, batch, gpu_fraction);
  GpuDevice& dev = mutable_device(device_id);
  if (!dev.healthy()) {
    return;
  }
  // Counterfactual actuation is immediate: there is no clock to ride the
  // shadow-instance reconfiguration latency on, and within one decision the
  // live path behaves the same way (probes pass overrides explicitly).
  InferenceInstance& inf = dev.mutable_inference();
  inf.batch_size = batch;
  inf.gpu_fraction = gpu_fraction;
  inf.mem_required_mb = InferenceMemoryMb(ServiceOnDevice(device_id), batch);
}

void ReplayEnv::ApplyTrainingFraction(int device_id, int task_id, double fraction) {
  MUDI_CHECK_GT(fraction, 0.0);
  RecordAction(ActionKind::kApplyTrainingFraction, device_id, task_id, fraction);
  GpuDevice& dev = mutable_device(device_id);
  if (!dev.healthy()) {
    return;
  }
  TrainingInstance* instance = dev.FindTraining(task_id);
  MUDI_CHECK(instance != nullptr);
  instance->gpu_fraction = fraction;
}

void ReplayEnv::SetTrainingPaused(int device_id, int task_id, bool paused) {
  RecordAction(ActionKind::kSetTrainingPaused, device_id, task_id, paused ? 1.0 : 0.0);
  GpuDevice& dev = mutable_device(device_id);
  if (!dev.healthy()) {
    return;
  }
  TrainingInstance* instance = dev.FindTraining(task_id);
  MUDI_CHECK(instance != nullptr);
  instance->paused = paused;
}

bool ReplayEnv::CanFitTraining(int device_id, const TrainingTaskSpec& spec) const {
  const GpuDevice& dev = device(device_id);
  return dev.MemoryRequiredMb() + TrainingMemoryMb(spec) <= dev.memory_mb();
}

StatusOr<WhatIfResult> RunWhatIf(ReplaySource& source, MultiplexPolicy& policy,
                                 const WhatIfOptions& options) {
  const DecisionTrace& trace = source.trace();
  if (trace.device_table.empty()) {
    return InvalidArgumentError("trace carries no device table; cannot reconstruct the cluster");
  }
  for (size_t i = 0; i < trace.device_table.size(); ++i) {
    if (trace.device_table[i].device_id != static_cast<int32_t>(i)) {
      return InvalidArgumentError("trace device table is not densely indexed by device id");
    }
  }
  if (!trace.decisions.empty() &&
      static_cast<HookKind>(trace.decisions.front().hook) != HookKind::kInitialize) {
    return InvalidArgumentError("trace decision stream does not start with Initialize");
  }

  ReplayEnv env(source, options.recorder);
  if (options.recorder != nullptr) {
    options.recorder->RecordDeviceTable(trace.device_table);
  }

  WhatIfResult result;
  const auto& tasks = ModelZoo::TrainingTasks();
  for (size_t i = 0; i < trace.decisions.size(); ++i) {
    const TraceDecision& d = trace.decisions[i];
    uint64_t bound = i + 1 < trace.decisions.size() ? trace.decisions[i + 1].seq
                                                    : std::numeric_limits<uint64_t>::max();
    env.AdvanceFeedback(bound);
    env.ApplyDecisionState(d);

    DecisionRecorder* rec = options.recorder;
    if (rec != nullptr) {
      rec->BeginDecision(static_cast<HookKind>(d.hook), d.sim_ms, d.device_id, d.task_id,
                         d.type_index);
    }
    WallTimer timer;
    int whatif_choice = -2;  // sentinel: not a SelectDevice decision
    switch (static_cast<HookKind>(d.hook)) {
      case HookKind::kInitialize:
        policy.Initialize(env);
        break;
      case HookKind::kSelectDevice: {
        MUDI_CHECK_GE(d.type_index, 0);
        TrainingTaskInfo info;
        info.task_id = d.task_id;
        info.type_index = static_cast<size_t>(d.type_index);
        info.spec = &tasks[info.type_index];
        whatif_choice = policy.SelectDevice(env, info).value_or(-1);
        if (rec != nullptr) {
          rec->SetChosenDevice(whatif_choice);
        }
        break;
      }
      case HookKind::kOnTrainingPlaced: {
        MUDI_CHECK_GE(d.type_index, 0);
        TrainingTaskInfo info;
        info.task_id = d.task_id;
        info.type_index = static_cast<size_t>(d.type_index);
        info.spec = &tasks[info.type_index];
        policy.OnTrainingPlaced(env, d.device_id, info);
        break;
      }
      case HookKind::kOnTrainingCompleted:
        policy.OnTrainingCompleted(env, d.device_id, d.task_id);
        break;
      case HookKind::kOnQpsChange:
        policy.OnQpsChange(env, d.device_id);
        break;
      case HookKind::kOnDeviceFailed: {
        std::vector<TrainingTaskInfo> displaced;
        displaced.reserve(d.displaced.size());
        for (const auto& [task_id, type_index] : d.displaced) {
          TrainingTaskInfo info;
          info.task_id = task_id;
          info.type_index = type_index;
          info.spec = &tasks[type_index];
          displaced.push_back(info);
          if (rec != nullptr) {
            rec->AddDisplaced(task_id, type_index);
          }
        }
        policy.OnDeviceFailed(env, d.device_id, displaced);
        break;
      }
      case HookKind::kOnDeviceRecovered:
        policy.OnDeviceRecovered(env, d.device_id);
        break;
      case HookKind::kOnControlPlaneRestart:
        policy.OnControlPlaneRestart(env);
        break;
      default:
        return InternalError("unknown hook kind in decision trace");
    }
    if (rec != nullptr) {
      rec->EndDecision(timer.ElapsedMs() * 1000.0);
    }

    std::vector<TraceAction> whatif_actions = env.TakeActions();
    bool diverged = false;
    std::string detail;
    if (whatif_choice != -2 && whatif_choice != d.chosen_device) {
      diverged = true;
      detail = FormatChoiceDivergence(d, whatif_choice);
    } else if (!SameActions(d.actions, whatif_actions)) {
      diverged = true;
      detail = FormatActionDivergence(d, whatif_actions);
    }
    if (diverged) {
      ++result.diverged_decisions;
      if (!result.diverged) {
        result.diverged = true;
        result.first_divergence_seq = d.seq;
        result.first_divergence_detail = std::move(detail);
      }
    }
    ++result.decisions_replayed;
  }

  result.probe_hits = source.hits();
  result.probe_sticky_hits = source.sticky_hits();
  result.probe_misses = source.misses();
  return result;
}

}  // namespace replay
}  // namespace mudi
