// Decision trace (schema mudi.decision_trace.v1): the on-disk record of
// everything a scheduling run observed and decided — profiled latency
// curves, interference-curve predictions, what-if probe observations,
// monitor feedback reads, and one record per policy decision point with the
// observation snapshot, candidate scores, chosen action(s), sim-time, and a
// causal sequence number.
//
// File layout: one JSON header line (validated through the src/perf
// json_check parser, like the BENCH_*.json artifacts), followed by
// length-prefixed little-endian binary records:
//
//   {"schema":"mudi.decision_trace.v1", ...}\n
//   [u32 payload_len][u8 kind][payload] ...
//   [u32 8][u8 kEnd][u64 record_count]
//
// Doubles are stored as raw IEEE-754 bit patterns, so a replayed observation
// is bit-identical to the live one — the property the record→replay fidelity
// tests (determinism_test) pin. The kEnd trailer carries the record count;
// a missing or inconsistent trailer marks the trace truncated and the reader
// rejects it.
#ifndef SRC_REPLAY_DECISION_TRACE_H_
#define SRC_REPLAY_DECISION_TRACE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/cluster/replay_hooks.h"
#include "src/common/status.h"
#include "src/perf/json_check.h"

namespace mudi {
namespace replay {

inline constexpr char kDecisionTraceSchema[] = "mudi.decision_trace.v1";

// --- schema enums ------------------------------------------------------------

enum class RecordKind : uint8_t {
  kDeviceTable = 1,
  kCurve = 2,
  kPrediction = 3,
  kObservation = 4,
  kQpsFeedback = 5,
  kDecision = 6,
  kRunSummary = 7,
  kEnd = 8,
};

// The policy decision points (MultiplexPolicy hooks) plus Initialize.
enum class HookKind : uint8_t {
  kInitialize = 0,
  kSelectDevice = 1,
  kOnTrainingPlaced = 2,
  kOnTrainingCompleted = 3,
  kOnQpsChange = 4,
  kOnDeviceFailed = 5,
  kOnDeviceRecovered = 6,
  kOnControlPlaneRestart = 7,
};
inline constexpr size_t kNumHookKinds = 8;
const char* HookName(HookKind hook);

enum class ObsKind : uint8_t {
  kProbeInference = 0,  // SchedulingEnv::ProbeInferenceLatencyMs
  kProbeTraining = 1,   // SchedulingEnv::ProbeTrainingIterMs
};

enum class ActionKind : uint8_t {
  kApplyInferenceConfig = 0,  // arg = batch, value = gpu fraction
  kApplyTrainingFraction = 1, // arg = task id, value = fraction
  kSetTrainingPaused = 2,     // arg = task id, value = 0/1
};
const char* ActionName(ActionKind action);

// --- record payloads ---------------------------------------------------------

struct TraceHeader {
  std::string schema = kDecisionTraceSchema;
  std::string policy;             // policy that produced the decisions
  std::string mode = "record";    // "record" (live run) | "counterfactual"
  std::string base_policy;        // counterfactual: policy of the source trace
  uint64_t seed = 0;
  uint64_t oracle_seed = 0;
  uint32_t num_devices = 0;
  uint32_t num_services = 0;
  uint32_t service_offset = 0;
};

// Static per-device facts (never change during a run), written once so
// decision snapshots stay compact.
struct DeviceTableEntry {
  int32_t device_id = -1;
  uint32_t service_index = 0;
  double memory_mb = 0.0;
  double compute_scale = 1.0;
};

// TraceCurve (the kCurve payload) is defined in src/cluster/replay_hooks.h —
// it is the policy<->trace exchange type, shared with the DecisionSink /
// PredictionReplay interfaces that src/core records into and replays from.

// One InterferencePredictor::PredictCurve result. The same key can recur
// with a different model after an online curve refresh, so consumers keep
// per-key FIFO order.
struct TracePrediction {
  uint64_t seq = 0;
  uint32_t service_index = 0;
  int32_t batch = 0;
  std::vector<uint32_t> mix;  // sorted training-type mix
  double k1 = 0.0, k2 = 0.0, x0 = 0.0, y0 = 0.0;
};

// One what-if probe observation. `key` is the content hash over every
// latency-determining input (see probe_key.h); replay looks values up by
// key, so a same-seed replay returns bit-identical observations.
struct TraceObservation {
  uint64_t seq = 0;
  double sim_ms = 0.0;
  uint8_t obs_kind = 0;  // ObsKind
  int32_t device_id = -1;
  uint64_t key = 0;
  double value = 0.0;
};

// One MeasuredQps / MeasuredP99 read made by a policy inside a decision.
struct TraceQpsFeedback {
  uint64_t seq = 0;
  double sim_ms = 0.0;
  int32_t device_id = -1;
  uint8_t is_p99 = 0;  // 0 = QPS, 1 = windowed P99
  double value = 0.0;
};

struct SnapshotTraining {
  int32_t task_id = -1;
  uint32_t type_index = 0;
  double gpu_fraction = 0.0;
  double mem_required_mb = 0.0;
  double mem_swapped_mb = 0.0;
  uint8_t paused = 0;
};

// Device state at decision time, sufficient to reconstruct the GpuDevice a
// counterfactual policy reasons about (replay_run.h).
struct SnapshotDevice {
  int32_t device_id = -1;
  uint8_t healthy = 1;
  double slowdown = 1.0;
  uint8_t has_inference = 0;
  uint32_t service_index = 0;
  int32_t inf_batch = 0;
  double inf_fraction = 0.0;
  double inf_mem_mb = 0.0;
  std::vector<SnapshotTraining> trainings;
};

struct TraceAction {
  uint8_t kind = 0;  // ActionKind
  int32_t device_id = -1;
  int32_t arg = 0;
  double value = 0.0;
};

struct TraceCandidate {
  int32_t device_id = -1;
  double score = 0.0;
};

struct TraceDecision {
  uint64_t seq = 0;
  double sim_ms = 0.0;
  uint8_t hook = 0;  // HookKind
  int32_t device_id = -1;      // target device (per-device hooks), else -1
  int32_t task_id = -1;        // task in flight, else -1
  int32_t type_index = -1;     // training type of that task, else -1
  int32_t chosen_device = -1;  // SelectDevice result (-1 = left queued)
  double wall_us = 0.0;        // decision latency (wall clock)
  std::vector<std::pair<int32_t, uint32_t>> displaced;  // OnDeviceFailed
  std::vector<TraceAction> actions;
  std::vector<TraceCandidate> candidates;
  std::vector<SnapshotDevice> snapshot;
};

struct TraceServiceSummary {
  std::string service;
  uint64_t windows_total = 0;
  uint64_t windows_violated = 0;
  uint64_t windows_violated_failure = 0;
  double served_requests = 0.0;
  double mean_latency_ms = 0.0;
};

// End-of-run SLO attribution, so trace_diff can report outcome deltas
// between two recorded runs. Counterfactual traces carry none (no data
// plane is simulated).
struct TraceRunSummary {
  double makespan_ms = 0.0;
  uint64_t tasks_completed = 0;
  std::vector<TraceServiceSummary> services;
};

// --- in-memory trace ---------------------------------------------------------

struct DecisionTrace {
  TraceHeader header;
  std::vector<DeviceTableEntry> device_table;
  std::vector<TraceCurve> curves;
  std::vector<TracePrediction> predictions;
  std::vector<TraceObservation> observations;
  std::vector<TraceQpsFeedback> qps_feedback;
  std::vector<TraceDecision> decisions;
  std::optional<TraceRunSummary> summary;
  uint64_t total_records = 0;
};

// --- header validation (json_check idiom) ------------------------------------

// Schema gate for the JSON header line: schema tag, policy/mode strings,
// integral seed and topology fields. `mode` must be "record" or
// "counterfactual".
Status ValidateDecisionTraceHeader(const perf::JsonValue& root);

// Serializes the header as a single deterministic JSON line (no trailing
// newline) and parses it back.
std::string EncodeTraceHeader(const TraceHeader& header);
StatusOr<TraceHeader> DecodeTraceHeader(const std::string& line);

// --- binary framing ----------------------------------------------------------

// Append-only binary record writer over an in-memory buffer (the
// DecisionRecorder flushes it to disk). Payload encoders for every record
// kind; each Append* frames one record.
class TraceWriter {
 public:
  explicit TraceWriter(const TraceHeader& header);

  void AppendDeviceTable(const std::vector<DeviceTableEntry>& table);
  void AppendCurve(const TraceCurve& curve);
  void AppendPrediction(const TracePrediction& prediction);
  void AppendObservation(const TraceObservation& obs);
  void AppendQpsFeedback(const TraceQpsFeedback& feedback);
  void AppendDecision(const TraceDecision& decision);
  void AppendRunSummary(const TraceRunSummary& summary);
  // Writes the kEnd trailer; no further appends are allowed.
  void Finish();

  bool finished() const { return finished_; }
  uint64_t records_written() const { return records_written_; }

  // The encoded bytes accumulated since the last Take (header included in
  // the first Take). Moves the buffer out.
  std::string TakeBuffer();
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  void BeginRecord(RecordKind kind);
  void EndRecord();

  std::string buffer_;
  size_t record_start_ = 0;  // offset of the current record's length field
  bool in_record_ = false;
  bool finished_ = false;
  uint64_t records_written_ = 0;

  // Payload primitive appenders (little-endian; doubles as raw bits).
  void U8(uint8_t v);
  void U32(uint32_t v);
  void I32(int32_t v);
  void U64(uint64_t v);
  void F64(double v);
  void Str(const std::string& s);
};

// Parses a complete trace file. Strict: a malformed header, an unknown
// record kind, an over/under-run payload, or a missing/inconsistent kEnd
// trailer all reject the file (the corruption tests in tests/replay_test.cc
// pin each case).
StatusOr<DecisionTrace> ReadDecisionTrace(const std::string& path);
StatusOr<DecisionTrace> ParseDecisionTrace(const std::string& bytes, const std::string& origin);

// Human-readable digest used by trace_summary: per-hook decision counts,
// top-N devices by SelectDevice choice, record-kind totals, and replay
// coverage (share of decisions carrying an observation snapshot).
std::string SummarizeDecisionTrace(const DecisionTrace& trace, size_t top_n = 5);

}  // namespace replay
}  // namespace mudi

#endif  // SRC_REPLAY_DECISION_TRACE_H_
