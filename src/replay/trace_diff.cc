#include "src/replay/trace_diff.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <sstream>
#include <string>
#include <unordered_map>

namespace mudi {
namespace replay {

namespace {

std::string DescribeDecision(const TraceDecision& d) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s(device=%d, task=%d)",
                HookName(static_cast<HookKind>(d.hook)), d.device_id, d.task_id);
  return buf;
}

// The candidate score a trace attached to `device_id` at this decision, if
// the policy reported one (DeviceSelector does; baselines may not).
std::optional<double> CandidateScore(const TraceDecision& d, int device_id) {
  for (const TraceCandidate& c : d.candidates) {
    if (c.device_id == device_id) {
      return c.score;
    }
  }
  return std::nullopt;
}

std::string ChoiceDetail(const TraceDecision& a, const TraceDecision& b) {
  std::ostringstream out;
  out << "chose device " << a.chosen_device << " vs " << b.chosen_device;
  auto score_a = CandidateScore(a, a.chosen_device);
  auto score_b = CandidateScore(b, b.chosen_device);
  if (score_a.has_value() || score_b.has_value()) {
    out << " (scores:";
    if (score_a.has_value()) {
      out << " A[" << a.chosen_device << "]=" << *score_a;
    }
    if (auto cross = CandidateScore(a, b.chosen_device)) {
      out << " A[" << b.chosen_device << "]=" << *cross;
    }
    if (score_b.has_value()) {
      out << " B[" << b.chosen_device << "]=" << *score_b;
    }
    if (auto cross = CandidateScore(b, a.chosen_device)) {
      out << " B[" << a.chosen_device << "]=" << *cross;
    }
    out << ")";
  }
  return out.str();
}

std::string ActionsDetail(const TraceDecision& a, const TraceDecision& b) {
  size_t n = std::min(a.actions.size(), b.actions.size());
  for (size_t i = 0; i < n; ++i) {
    const TraceAction& x = a.actions[i];
    const TraceAction& y = b.actions[i];
    if (x.kind != y.kind || x.device_id != y.device_id || x.arg != y.arg || x.value != y.value) {
      char buf[192];
      std::snprintf(buf, sizeof(buf),
                    "action %zu: A %s(dev=%d, arg=%d, value=%.6g) vs B %s(dev=%d, arg=%d, "
                    "value=%.6g)",
                    i, ActionName(static_cast<ActionKind>(x.kind)), x.device_id, x.arg, x.value,
                    ActionName(static_cast<ActionKind>(y.kind)), y.device_id, y.arg, y.value);
      return buf;
    }
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "A took %zu action(s), B took %zu", a.actions.size(),
                b.actions.size());
  return buf;
}

bool SameActions(const TraceDecision& a, const TraceDecision& b) {
  if (a.actions.size() != b.actions.size()) {
    return false;
  }
  for (size_t i = 0; i < a.actions.size(); ++i) {
    const TraceAction& x = a.actions[i];
    const TraceAction& y = b.actions[i];
    if (x.kind != y.kind || x.device_id != y.device_id || x.arg != y.arg || x.value != y.value) {
      return false;
    }
  }
  return true;
}

struct HookAccum {
  uint64_t count = 0;
  double total_wall_us = 0.0;
};

}  // namespace

TraceDiffResult DiffTraces(const DecisionTrace& a, const DecisionTrace& b) {
  TraceDiffResult diff;
  diff.policy_a = a.header.policy;
  diff.policy_b = b.header.policy;
  diff.mode_a = a.header.mode;
  diff.mode_b = b.header.mode;
  diff.decisions_a = a.decisions.size();
  diff.decisions_b = b.decisions.size();

  size_t aligned = std::min(a.decisions.size(), b.decisions.size());
  for (size_t i = 0; i < aligned; ++i) {
    const TraceDecision& da = a.decisions[i];
    const TraceDecision& db = b.decisions[i];
    std::string kind, detail;
    if (da.hook != db.hook || da.device_id != db.device_id || da.task_id != db.task_id) {
      kind = "structural";
      detail = "A " + DescribeDecision(da) + " vs B " + DescribeDecision(db);
    } else if (da.chosen_device != db.chosen_device) {
      kind = "choice";
      detail = ChoiceDetail(da, db);
    } else if (!SameActions(da, db)) {
      kind = "actions";
      detail = ActionsDetail(da, db);
    } else {
      continue;
    }
    ++diff.diverged_positions;
    if (!diff.first_divergence.has_value()) {
      DecisionDivergence first;
      first.index = i;
      first.seq_a = da.seq;
      first.seq_b = db.seq;
      first.kind = std::move(kind);
      first.detail = std::move(detail);
      diff.first_divergence = std::move(first);
    }
  }
  // Unequal stream lengths are themselves a (structural) divergence when no
  // earlier one exists.
  if (!diff.first_divergence.has_value() && a.decisions.size() != b.decisions.size()) {
    DecisionDivergence first;
    first.index = aligned;
    first.seq_a = aligned < a.decisions.size() ? a.decisions[aligned].seq : 0;
    first.seq_b = aligned < b.decisions.size() ? b.decisions[aligned].seq : 0;
    first.kind = "structural";
    char buf[96];
    std::snprintf(buf, sizeof(buf), "stream lengths differ: A has %zu decisions, B has %zu",
                  a.decisions.size(), b.decisions.size());
    first.detail = buf;
    diff.first_divergence = std::move(first);
    ++diff.diverged_positions;
  }

  std::array<HookAccum, kNumHookKinds> accum_a{};
  std::array<HookAccum, kNumHookKinds> accum_b{};
  for (const TraceDecision& d : a.decisions) {
    if (d.hook < kNumHookKinds) {
      ++accum_a[d.hook].count;
      accum_a[d.hook].total_wall_us += d.wall_us;
    }
  }
  for (const TraceDecision& d : b.decisions) {
    if (d.hook < kNumHookKinds) {
      ++accum_b[d.hook].count;
      accum_b[d.hook].total_wall_us += d.wall_us;
    }
  }
  for (size_t h = 0; h < kNumHookKinds; ++h) {
    if (accum_a[h].count == 0 && accum_b[h].count == 0) {
      continue;
    }
    HookLatencyDelta delta;
    delta.hook = static_cast<HookKind>(h);
    delta.count_a = accum_a[h].count;
    delta.count_b = accum_b[h].count;
    delta.mean_wall_us_a =
        accum_a[h].count > 0 ? accum_a[h].total_wall_us / static_cast<double>(accum_a[h].count)
                             : 0.0;
    delta.mean_wall_us_b =
        accum_b[h].count > 0 ? accum_b[h].total_wall_us / static_cast<double>(accum_b[h].count)
                             : 0.0;
    diff.hook_latency.push_back(delta);
  }

  diff.has_summary_a = a.summary.has_value();
  diff.has_summary_b = b.summary.has_value();
  if (a.summary.has_value()) {
    diff.makespan_ms_a = a.summary->makespan_ms;
    diff.tasks_completed_a = a.summary->tasks_completed;
  }
  if (b.summary.has_value()) {
    diff.makespan_ms_b = b.summary->makespan_ms;
    diff.tasks_completed_b = b.summary->tasks_completed;
  }
  if (a.summary.has_value() && b.summary.has_value()) {
    std::unordered_map<std::string, const TraceServiceSummary*> by_name;
    for (const TraceServiceSummary& s : b.summary->services) {
      by_name[s.service] = &s;
    }
    for (const TraceServiceSummary& s : a.summary->services) {
      ServiceSloDelta delta;
      delta.service = s.service;
      delta.windows_total_a = s.windows_total;
      delta.windows_violated_a = s.windows_violated;
      auto it = by_name.find(s.service);
      if (it != by_name.end()) {
        delta.windows_total_b = it->second->windows_total;
        delta.windows_violated_b = it->second->windows_violated;
      }
      diff.services.push_back(std::move(delta));
    }
  }
  return diff;
}

std::string FormatTraceDiff(const TraceDiffResult& diff) {
  std::ostringstream out;
  out << "trace A: policy=" << diff.policy_a << " mode=" << diff.mode_a
      << " decisions=" << diff.decisions_a << "\n";
  out << "trace B: policy=" << diff.policy_b << " mode=" << diff.mode_b
      << " decisions=" << diff.decisions_b << "\n";

  if (diff.first_divergence.has_value()) {
    const DecisionDivergence& f = *diff.first_divergence;
    out << "\nFIRST DIVERGENCE at decision #" << f.index << " (seq A=" << f.seq_a
        << ", B=" << f.seq_b << ") [" << f.kind << "]\n  " << f.detail << "\n";
    out << "diverged positions: " << diff.diverged_positions << "\n";
  } else {
    out << "\nno divergence: the decision streams are identical\n";
  }

  out << "\nper-hook decision latency (mean wall us, A vs B):\n";
  for (const HookLatencyDelta& h : diff.hook_latency) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "  %-22s A: %6llu x %9.1f us   B: %6llu x %9.1f us\n",
                  HookName(h.hook), static_cast<unsigned long long>(h.count_a), h.mean_wall_us_a,
                  static_cast<unsigned long long>(h.count_b), h.mean_wall_us_b);
    out << buf;
  }

  if (diff.has_summary_a && diff.has_summary_b) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "\nrun outcome: makespan %.1f ms vs %.1f ms, tasks completed %llu vs %llu\n",
                  diff.makespan_ms_a, diff.makespan_ms_b,
                  static_cast<unsigned long long>(diff.tasks_completed_a),
                  static_cast<unsigned long long>(diff.tasks_completed_b));
    out << buf;
    out << "SLO attribution (violated/total windows, A vs B):\n";
    for (const ServiceSloDelta& s : diff.services) {
      std::snprintf(buf, sizeof(buf), "  %-16s %llu/%llu vs %llu/%llu\n", s.service.c_str(),
                    static_cast<unsigned long long>(s.windows_violated_a),
                    static_cast<unsigned long long>(s.windows_total_a),
                    static_cast<unsigned long long>(s.windows_violated_b),
                    static_cast<unsigned long long>(s.windows_total_b));
      out << buf;
    }
  } else if (diff.has_summary_a != diff.has_summary_b) {
    out << "\nrun outcome: only trace " << (diff.has_summary_a ? "A" : "B")
        << " carries a run summary (counterfactual traces have none)\n";
  }
  return out.str();
}

}  // namespace replay
}  // namespace mudi
