// ReplaySource: serves recorded oracle observations and interference-curve
// predictions in place of live PerfOracle / profiler / modeler calls.
//
// Lookups are content-addressed (probe_key.h): the replaying run hashes the
// probe inputs it *would* have sent to the oracle and asks for the recorded
// answer. Because the same key can recur with different values over time
// (predictions change after online curve refreshes; probes repeat at
// different measured QPS only when QPS is itself a key input, but repeated
// identical questions get identical noisy answers re-asked), each key keeps
// its recorded values in FIFO order; a fidelity replay (same policy, same
// seed) consumes them in exactly the recorded order. Once a FIFO is
// exhausted the last value is served sticky ("sticky hits"), and a key never
// recorded at all is a miss — the caller falls back to a live computation.
#ifndef SRC_REPLAY_REPLAY_SOURCE_H_
#define SRC_REPLAY_REPLAY_SOURCE_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cluster/replay_hooks.h"
#include "src/common/status.h"
#include "src/replay/decision_trace.h"
#include "src/replay/probe_key.h"

namespace mudi {
namespace replay {

// PredictedModel is defined in src/cluster/replay_hooks.h alongside the
// PredictionReplay interface this class implements — the policy layer
// consumes recorded predictions without a src/replay dependency.
class ReplaySource : public PredictionReplay {
 public:
  explicit ReplaySource(DecisionTrace trace);
  static StatusOr<ReplaySource> Load(const std::string& path);

  const DecisionTrace& trace() const { return trace_; }
  const std::vector<TraceCurve>& curves() const override { return trace_.curves; }

  // Next recorded probe observation for `key` (keys embed the probe domain,
  // see probe_key.h). nullopt = never recorded; the caller must compute live.
  std::optional<double> TakeObservation(uint64_t key);

  // Next recorded PredictCurve result for (service, batch, sorted mix).
  std::optional<PredictedModel> TakePrediction(
      uint32_t service_index, int batch,
      const std::vector<uint32_t>& sorted_mix) override;

  uint64_t hits() const { return hits_; }
  uint64_t sticky_hits() const { return sticky_hits_; }
  uint64_t misses() const { return misses_; }

 private:
  template <typename T>
  struct Fifo {
    std::vector<T> values;
    size_t next = 0;
  };

  DecisionTrace trace_;
  std::unordered_map<uint64_t, Fifo<double>> observations_;
  std::unordered_map<uint64_t, Fifo<PredictedModel>> predictions_;
  uint64_t hits_ = 0;
  uint64_t sticky_hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace replay
}  // namespace mudi

#endif  // SRC_REPLAY_REPLAY_SOURCE_H_
