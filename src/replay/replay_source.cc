#include "src/replay/replay_source.h"

namespace mudi {
namespace replay {

ReplaySource::ReplaySource(DecisionTrace trace) : trace_(std::move(trace)) {
  for (const TraceObservation& obs : trace_.observations) {
    observations_[obs.key].values.push_back(obs.value);
  }
  for (const TracePrediction& p : trace_.predictions) {
    uint64_t key = PredictionKey(p.service_index, p.batch, p.mix);
    predictions_[key].values.push_back(PredictedModel{p.k1, p.k2, p.x0, p.y0});
  }
}

StatusOr<ReplaySource> ReplaySource::Load(const std::string& path) {
  StatusOr<DecisionTrace> trace = ReadDecisionTrace(path);
  if (!trace.ok()) {
    return trace.status();
  }
  return ReplaySource(std::move(*trace));
}

std::optional<double> ReplaySource::TakeObservation(uint64_t key) {
  auto it = observations_.find(key);
  if (it == observations_.end() || it->second.values.empty()) {
    ++misses_;
    return std::nullopt;
  }
  Fifo<double>& fifo = it->second;
  if (fifo.next < fifo.values.size()) {
    ++hits_;
    return fifo.values[fifo.next++];
  }
  ++sticky_hits_;
  return fifo.values.back();
}

std::optional<PredictedModel> ReplaySource::TakePrediction(uint32_t service_index, int batch,
                                                           const std::vector<uint32_t>& sorted_mix) {
  uint64_t key = PredictionKey(service_index, batch, sorted_mix);
  auto it = predictions_.find(key);
  if (it == predictions_.end() || it->second.values.empty()) {
    ++misses_;
    return std::nullopt;
  }
  Fifo<PredictedModel>& fifo = it->second;
  if (fifo.next < fifo.values.size()) {
    ++hits_;
    return fifo.values[fifo.next++];
  }
  ++sticky_hits_;
  return fifo.values.back();
}

}  // namespace replay
}  // namespace mudi
