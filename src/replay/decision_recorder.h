// DecisionRecorder: the one sanctioned sink for decision-trace emission
// (mudi_lint's mudi-trace-sink check rejects ad-hoc writers elsewhere).
//
// The recorder is attached to a run the way Telemetry and PerfCollector are:
// an optional pointer the harness and policies consult, observe-only by
// contract — attaching one must not perturb a single simulated event
// (determinism_test RecordObserveOnlyTest pins bit-identical results for all
// six policies with a recorder attached).
//
// Causality model: one global sequence number orders every decision,
// observation, prediction, and feedback read. Observations made while a
// decision is open belong to that decision (they carry later seq numbers
// than the decision's BeginDecision seq but precede its EndDecision write,
// which is when the decision record is serialized). trace_diff aligns two
// traces on these sequence numbers.
#ifndef SRC_REPLAY_DECISION_RECORDER_H_
#define SRC_REPLAY_DECISION_RECORDER_H_

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/replay_hooks.h"
#include "src/common/status.h"
#include "src/gpu/gpu_device.h"
#include "src/replay/decision_trace.h"

namespace mudi {
namespace replay {

// Full decision-time state of one device, built from the live GpuDevice.
SnapshotDevice MakeSnapshotDevice(const GpuDevice& dev);

// Implements DecisionSink (src/cluster/replay_hooks.h) so the policy layer
// can record curves, predictions, and candidate scores without an up-layer
// include of this header.
class DecisionRecorder : public DecisionSink {
 public:
  // Opens `path` for writing and emits the header line. Fails if the file
  // cannot be created.
  static StatusOr<std::unique_ptr<DecisionRecorder>> Create(const std::string& path,
                                                            const TraceHeader& header);
  ~DecisionRecorder();

  DecisionRecorder(const DecisionRecorder&) = delete;
  DecisionRecorder& operator=(const DecisionRecorder&) = delete;

  // --- run-static records ----------------------------------------------------
  void RecordDeviceTable(const std::vector<DeviceTableEntry>& table);
  void RecordCurve(const TraceCurve& curve) override;
  void RecordRunSummary(const TraceRunSummary& summary);

  // --- decision lifecycle ----------------------------------------------------
  // Opens a decision scope; at most one may be open at a time. Returns the
  // decision's causal sequence number.
  uint64_t BeginDecision(HookKind hook, double sim_ms, int device_id = -1, int task_id = -1,
                         int type_index = -1);
  bool decision_open() const override { return decision_open_; }

  void AddSnapshotDevice(const SnapshotDevice& dev);
  void AddCandidate(int device_id, double score) override;
  void SetChosenDevice(int device_id);
  void AddDisplaced(int task_id, uint32_t type_index);
  // Actions the policy took through the SchedulingEnv during this decision.
  void AddAction(ActionKind kind, int device_id, int arg, double value);
  // Serializes and writes the open decision. `wall_us` is the measured
  // wall-clock decision latency.
  void EndDecision(double wall_us);

  // --- streamed records (valid inside or outside a decision scope) -----------
  void RecordObservation(ObsKind kind, double sim_ms, int device_id, uint64_t key, double value);
  void RecordPrediction(uint32_t service_index, int batch, const std::vector<uint32_t>& sorted_mix,
                        double k1, double k2, double x0, double y0) override;
  void RecordQpsFeedback(double sim_ms, int device_id, bool is_p99, double value);

  // Writes the end-of-trace marker and closes the file. Idempotent; the
  // destructor calls it as a safety net (ignoring the result).
  Status Close();

  uint64_t decisions_recorded() const { return decisions_recorded_; }
  uint64_t observations_recorded() const { return observations_recorded_; }
  const std::string& path() const { return path_; }

 private:
  DecisionRecorder(const std::string& path, const TraceHeader& header);

  void FlushIfLarge();

  std::string path_;
  std::ofstream out_;
  TraceWriter writer_;

  uint64_t next_seq_ = 0;
  bool decision_open_ = false;
  TraceDecision current_;
  uint64_t decisions_recorded_ = 0;
  uint64_t observations_recorded_ = 0;
  bool finished_ = false;
};

}  // namespace replay
}  // namespace mudi

#endif  // SRC_REPLAY_DECISION_RECORDER_H_
