// Structured diff of two decision traces (tools/trace_diff front-end).
//
// Decisions are aligned positionally on the causal stream — two same-seed
// runs of the same workload emit decisions in the same causal order until
// they diverge, so the first index where the streams disagree IS the first
// divergent decision. Three divergence classes, checked in order:
//   structural — different hook/device/task at the same position (the runs
//                stopped making the same *kind* of decision);
//   choice     — same SelectDevice decision, different chosen device;
//   actions    — same decision point, different actuation sequence.
// Beyond the first divergence, later positions still contribute to the
// aggregate sections (decision counts, per-hook decision-latency deltas,
// SLO attribution from the run summaries) but per-position comparison stops
// being causal and is not reported.
#ifndef SRC_REPLAY_TRACE_DIFF_H_
#define SRC_REPLAY_TRACE_DIFF_H_

#include <optional>
#include <string>
#include <vector>

#include "src/replay/decision_trace.h"

namespace mudi {
namespace replay {

struct DecisionDivergence {
  size_t index = 0;  // position in the aligned decision streams
  uint64_t seq_a = 0;
  uint64_t seq_b = 0;
  std::string kind;  // "structural" | "choice" | "actions"
  std::string detail;
};

// Per-hook decision-latency comparison (wall_us recorded at decision time).
struct HookLatencyDelta {
  HookKind hook = HookKind::kInitialize;
  uint64_t count_a = 0;
  uint64_t count_b = 0;
  double mean_wall_us_a = 0.0;
  double mean_wall_us_b = 0.0;
};

// SLO-attribution delta for one service (from the traces' run summaries).
struct ServiceSloDelta {
  std::string service;
  uint64_t windows_total_a = 0, windows_violated_a = 0;
  uint64_t windows_total_b = 0, windows_violated_b = 0;
};

struct TraceDiffResult {
  std::string policy_a, policy_b;
  std::string mode_a, mode_b;
  size_t decisions_a = 0, decisions_b = 0;
  std::optional<DecisionDivergence> first_divergence;
  size_t diverged_positions = 0;  // aligned positions that disagree
  std::vector<HookLatencyDelta> hook_latency;  // hooks present in either trace
  std::vector<ServiceSloDelta> services;       // empty unless both have summaries
  bool has_summary_a = false, has_summary_b = false;
  double makespan_ms_a = 0.0, makespan_ms_b = 0.0;
  uint64_t tasks_completed_a = 0, tasks_completed_b = 0;
};

TraceDiffResult DiffTraces(const DecisionTrace& a, const DecisionTrace& b);

// Human-readable report (what tools/trace_diff prints).
std::string FormatTraceDiff(const TraceDiffResult& diff);

}  // namespace replay
}  // namespace mudi

#endif  // SRC_REPLAY_TRACE_DIFF_H_
