// Cluster topology: nodes of GPUs, with flat device iteration for the
// cluster-wide schedulers. Mirrors the paper's testbeds: 3 nodes × 4 A100
// (physical) and a 1000-GPU simulated cluster.
#ifndef SRC_CLUSTER_CLUSTER_STATE_H_
#define SRC_CLUSTER_CLUSTER_STATE_H_

#include <memory>
#include <vector>

#include "src/gpu/gpu_device.h"

namespace mudi {

struct NodeSpec {
  int gpus_per_node = 4;
  double gpu_memory_mb = ModelZoo::kGpuMemoryMb;
};

class ClusterState {
 public:
  // Builds `num_nodes` homogeneous nodes.
  ClusterState(int num_nodes, const NodeSpec& spec);

  size_t num_devices() const { return devices_.size(); }
  int num_nodes() const { return num_nodes_; }
  int gpus_per_node() const { return spec_.gpus_per_node; }

  GpuDevice& device(size_t index);
  const GpuDevice& device(size_t index) const;
  std::vector<GpuDevice>& devices() { return devices_; }
  const std::vector<GpuDevice>& devices() const { return devices_; }

  // Node index owning device `index`.
  int NodeOf(size_t index) const;

 private:
  int num_nodes_;
  NodeSpec spec_;
  std::vector<GpuDevice> devices_;
};

}  // namespace mudi

#endif  // SRC_CLUSTER_CLUSTER_STATE_H_
