#include "src/cluster/monitor.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/check.h"
#include "src/telemetry/telemetry.h"

namespace mudi {

QpsMonitor::QpsMonitor() : QpsMonitor(Options{}) {}

QpsMonitor::QpsMonitor(Options options) : options_(options) {
  MUDI_CHECK_GT(options_.window_ms, 0.0);
  MUDI_CHECK_GT(options_.change_threshold, 0.0);
  MUDI_CHECK_GT(options_.latency_window, 0u);
}

void QpsMonitor::EvictOld(TimeMs now) {
  while (!arrivals_.empty() && arrivals_.front().first < now - options_.window_ms) {
    arrivals_in_window_ -= arrivals_.front().second;
    arrivals_.pop_front();
  }
  if (arrivals_.empty()) {
    arrivals_in_window_ = 0.0;
  }
}

void QpsMonitor::RecordArrivals(TimeMs now, double count) {
  MUDI_CHECK_GE(count, 0.0);
  arrivals_.emplace_back(now, count);
  arrivals_in_window_ += count;
  EvictOld(now);
}

void QpsMonitor::RecordLatency(double latency_ms, double weight) {
  MUDI_CHECK_GE(weight, 0.0);
  if (weight == 0.0) {
    return;
  }
  if (latencies_.size() == options_.latency_window) {
    latencies_.pop_front();
  }
  latencies_.emplace_back(latency_ms, weight);
}

double QpsMonitor::CurrentQps(TimeMs now) {
  EvictOld(now);
  return arrivals_in_window_ / options_.window_ms * kMsPerSecond;
}

bool QpsMonitor::QpsChangedBeyondThreshold(TimeMs now) {
  double qps = CurrentQps(now);
  if (base_qps_ < 0.0) {
    return qps > 0.0;  // first observation always triggers initial tuning
  }
  double base = std::max(base_qps_, 1e-9);
  return std::abs(qps - base_qps_) / base > options_.change_threshold;
}

void QpsMonitor::SetTelemetry(Telemetry* telemetry, int device_id) {
  telemetry_ = (telemetry != nullptr && telemetry->enabled()) ? telemetry : nullptr;
  device_id_ = device_id;
}

void QpsMonitor::AckQpsChange(TimeMs now) {
  double previous = base_qps_;
  base_qps_ = CurrentQps(now);
  if (telemetry_ != nullptr) {
    telemetry_->metrics().GetCounter("monitor.qps_reacks").Increment();
    MUDI_TRACE_INSTANT(telemetry_, "monitor", "qps_reack", device_id_, now,
                       telemetry::TraceArgs{telemetry::TraceArg::Num("qps", base_qps_),
                                            telemetry::TraceArg::Num("prev_qps", previous)});
  }
}

double QpsMonitor::P99LatencyMs() const {
  if (latencies_.empty()) {
    return 0.0;
  }
  std::vector<std::pair<double, double>> sorted(latencies_.begin(), latencies_.end());
  std::sort(sorted.begin(), sorted.end());
  double total = 0.0;
  for (const auto& [lat, w] : sorted) {
    total += w;
  }
  double target = 0.99 * total;
  double cum = 0.0;
  for (const auto& [lat, w] : sorted) {
    cum += w;
    if (cum >= target) {
      return lat;
    }
  }
  return sorted.back().first;
}

}  // namespace mudi
