#include "src/cluster/monitor.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/check.h"
#include "src/common/float_eq.h"
#include "src/telemetry/telemetry.h"

namespace mudi {

QpsMonitor::QpsMonitor() : QpsMonitor(Options{}) {}

QpsMonitor::QpsMonitor(Options options) : options_(options) {
  MUDI_CHECK_GT(options_.window_ms, 0.0);
  MUDI_CHECK_GT(options_.change_threshold, 0.0);
  MUDI_CHECK_GT(options_.latency_window, 0u);
}

void QpsMonitor::EvictOld(TimeMs now) {
  while (!arrivals_.empty() && arrivals_.front().first < now - options_.window_ms) {
    arrivals_in_window_ -= arrivals_.front().second;
    arrivals_.pop_front();
  }
  if (arrivals_.empty()) {
    arrivals_in_window_ = 0.0;
  }
}

void QpsMonitor::RecordArrivals(TimeMs now, double count) {
  MUDI_CHECK_GE(count, 0.0);
  if (feedback_lost_) {
    return;  // Samples from the device never reach the monitor.
  }
  arrivals_.emplace_back(now, count);
  arrivals_in_window_ += count;
  EvictOld(now);
}

void QpsMonitor::RecordLatency(double latency_ms, double weight) {
  MUDI_CHECK_GE(weight, 0.0);
  if (ExactEq(weight, 0.0) || feedback_lost_) {
    return;
  }
  if (latencies_.size() == options_.latency_window) {
    latencies_.pop_front();
  }
  latencies_.emplace_back(latency_ms, weight);
}

double QpsMonitor::CurrentQps(TimeMs now) {
  if (feedback_lost_ || now < stale_until_ms_) {
    return frozen_qps_;
  }
  EvictOld(now);
  return arrivals_in_window_ / options_.window_ms * kMsPerSecond;
}

bool QpsMonitor::QpsChangedBeyondThreshold(TimeMs now) {
  if (feedback_lost_ || now < stale_until_ms_) {
    return false;  // A frozen estimate carries no new information.
  }
  double qps = CurrentQps(now);
  if (base_qps_ < 0.0) {
    return qps > 0.0;  // first observation always triggers initial tuning
  }
  double base = std::max(base_qps_, 1e-9);
  return std::abs(qps - base_qps_) / base > options_.change_threshold;
}

void QpsMonitor::SetFeedbackLost(bool lost, TimeMs now) {
  if (lost == feedback_lost_) {
    return;
  }
  if (lost) {
    frozen_qps_ = CurrentQps(now);
    frozen_at_ms_ = now;
    feedback_lost_ = true;
    stale_until_ms_ = -1.0;
  } else {
    feedback_lost_ = false;
    // Whatever survived in the window predates the outage; drop it and keep
    // serving the frozen value until a full window of fresh samples exists.
    arrivals_.clear();
    arrivals_in_window_ = 0.0;
    latencies_.clear();
    stale_until_ms_ = now + options_.window_ms;
  }
}

std::optional<TimeMs> QpsMonitor::StalenessMs(TimeMs now) const {
  if (feedback_lost_ || now < stale_until_ms_) {
    return now - frozen_at_ms_;
  }
  return std::nullopt;
}

void QpsMonitor::SetTelemetry(Telemetry* telemetry, int device_id) {
  telemetry_ = (telemetry != nullptr && telemetry->enabled()) ? telemetry : nullptr;
  device_id_ = device_id;
}

void QpsMonitor::AckQpsChange(TimeMs now) {
  double previous = base_qps_;
  base_qps_ = CurrentQps(now);
  if (telemetry_ != nullptr) {
    telemetry_->metrics().GetCounter("monitor.qps_reacks").Increment();
    MUDI_TRACE_INSTANT(telemetry_, "monitor", "qps_reack", device_id_, now,
                       telemetry::TraceArgs{telemetry::TraceArg::Num("qps", base_qps_),
                                            telemetry::TraceArg::Num("prev_qps", previous)});
  }
}

double QpsMonitor::P99LatencyMs() const {
  if (latencies_.empty()) {
    return 0.0;
  }
  std::vector<std::pair<double, double>> sorted(latencies_.begin(), latencies_.end());
  std::sort(sorted.begin(), sorted.end());
  double total = 0.0;
  for (const auto& [lat, w] : sorted) {
    total += w;
  }
  double target = 0.99 * total;
  double cum = 0.0;
  for (const auto& [lat, w] : sorted) {
    cum += w;
    if (cum >= target) {
      return lat;
    }
  }
  return sorted.back().first;
}

}  // namespace mudi
