// Record/replay hook interfaces, defined at the policy layer.
//
// The decision-trace machinery lives in src/replay (above src/core in the
// layer order, because replay_run drives whole experiments). The policy side
// — MudiPolicy preloading recorded curves, InterferencePredictor substituting
// recorded predictions, DeviceSelector attaching candidate scores — must not
// include src/replay headers (mudi-layering would reject the up-layer edge).
// These narrow interfaces invert that dependency: src/core talks to them,
// and src/replay's DecisionRecorder / ReplaySource implement them.
//
// The data types (TraceCurve, PredictedModel) live here too: they are the
// policy<->trace exchange format, deliberately free of src/core types so the
// trace reader stays independent of the policy implementation.
#ifndef SRC_CLUSTER_REPLAY_HOOKS_H_
#define SRC_CLUSTER_REPLAY_HOOKS_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace mudi {
namespace replay {

// One offline-profiled latency curve (LatencyProfiler::ProfiledCurve,
// re-expressed without a src/core dependency). Serialized into the decision
// trace as a kCurve record (src/replay/decision_trace.h).
struct TraceCurve {
  uint32_t service_index = 0;
  int32_t batch = 0;
  std::vector<uint32_t> training_types;  // sorted
  double k1 = 0.0, k2 = 0.0, x0 = 0.0, y0 = 0.0;
  std::vector<double> sample_fractions;
  std::vector<double> sample_latencies;
};

// The four parameters of a recorded piecewise-linear prediction.
struct PredictedModel {
  double k1 = 0.0, k2 = 0.0, x0 = 0.0, y0 = 0.0;
};

// Replay-mode source of recorded policy inputs. Implemented by
// replay::ReplaySource; consumed by MudiPolicy::Initialize (curve preload)
// and InterferencePredictor::PredictCurve (recorded predictions).
class PredictionReplay {
 public:
  virtual ~PredictionReplay() = default;

  // Every offline-profiled curve the recorded run dumped at Initialize.
  virtual const std::vector<TraceCurve>& curves() const = 0;

  // Next recorded PredictCurve result for (service, batch, sorted mix);
  // nullopt when the mix was never recorded (caller computes live).
  virtual std::optional<PredictedModel> TakePrediction(
      uint32_t service_index, int batch, const std::vector<uint32_t>& sorted_mix) = 0;
};

// Record-mode sink for policy-side trace records. Implemented by
// replay::DecisionRecorder. Observe-only by contract: attaching a sink must
// not perturb a single simulated event.
class DecisionSink {
 public:
  virtual ~DecisionSink() = default;

  // True while the harness holds a decision scope open; candidate scores are
  // only meaningful inside one.
  virtual bool decision_open() const = 0;

  virtual void RecordCurve(const TraceCurve& curve) = 0;
  virtual void RecordPrediction(uint32_t service_index, int batch,
                                const std::vector<uint32_t>& sorted_mix, double k1,
                                double k2, double x0, double y0) = 0;
  virtual void AddCandidate(int device_id, double score) = 0;
};

}  // namespace replay
}  // namespace mudi

#endif  // SRC_CLUSTER_REPLAY_HOOKS_H_
