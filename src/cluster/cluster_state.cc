#include "src/cluster/cluster_state.h"

#include "src/common/check.h"

namespace mudi {

ClusterState::ClusterState(int num_nodes, const NodeSpec& spec)
    : num_nodes_(num_nodes), spec_(spec) {
  MUDI_CHECK_GT(num_nodes, 0);
  MUDI_CHECK_GT(spec.gpus_per_node, 0);
  devices_.reserve(static_cast<size_t>(num_nodes) * static_cast<size_t>(spec.gpus_per_node));
  int id = 0;
  for (int n = 0; n < num_nodes; ++n) {
    for (int g = 0; g < spec.gpus_per_node; ++g) {
      devices_.emplace_back(id++, spec.gpu_memory_mb);
    }
  }
}

GpuDevice& ClusterState::device(size_t index) {
  MUDI_CHECK_LT(index, devices_.size());
  return devices_[index];
}

const GpuDevice& ClusterState::device(size_t index) const {
  MUDI_CHECK_LT(index, devices_.size());
  return devices_[index];
}

int ClusterState::NodeOf(size_t index) const {
  MUDI_CHECK_LT(index, devices_.size());
  return static_cast<int>(index) / spec_.gpus_per_node;
}

}  // namespace mudi
