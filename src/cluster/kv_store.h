// In-process etcd-like key/value store with prefix watches.
//
// The paper's implementation stores tuned configurations and intermediate
// results in ETCD; agents watch keys and react to updates (§6). This module
// reproduces that coordination pattern: Put bumps a global revision and
// synchronously notifies watchers whose prefix matches (the simulator is
// single-threaded, so delivery order is deterministic).
#ifndef SRC_CLUSTER_KV_STORE_H_
#define SRC_CLUSTER_KV_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace mudi {

class KvStore {
 public:
  using WatchId = uint64_t;
  // (key, value, revision)
  using WatchCallback = std::function<void(const std::string&, const std::string&, uint64_t)>;

  // Stores `value` under `key`, bumps the revision, fires matching watches.
  uint64_t Put(const std::string& key, const std::string& value);

  std::optional<std::string> Get(const std::string& key) const;

  // Like Get, but a missing key is an error the caller must handle — the
  // graceful-degradation path for entries a failed device deregistered.
  StatusOr<std::string> GetRequired(const std::string& key) const;

  // All (key, value) pairs whose key starts with `prefix`, key-ordered.
  std::vector<std::pair<std::string, std::string>> List(const std::string& prefix) const;

  // Deletes a key (no watch notification, matching etcd's delete-event being
  // unused by the paper's agents). Returns true if the key existed.
  bool Delete(const std::string& key);

  // Deletes every key starting with `prefix` (a failed device's whole
  // subtree in one call); returns the number of keys removed.
  size_t DeletePrefix(const std::string& prefix);

  // Registers a callback fired on every Put whose key starts with `prefix`.
  WatchId Watch(const std::string& prefix, WatchCallback callback);
  bool Unwatch(WatchId id);

  uint64_t revision() const { return revision_; }
  size_t size() const { return data_.size(); }

 private:
  struct Watcher {
    WatchId id;
    std::string prefix;
    WatchCallback callback;
  };

  uint64_t revision_ = 0;
  WatchId next_watch_id_ = 1;
  std::map<std::string, std::string> data_;
  std::vector<Watcher> watchers_;
};

}  // namespace mudi

#endif  // SRC_CLUSTER_KV_STORE_H_
