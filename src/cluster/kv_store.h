// In-process etcd-like key/value store with prefix watches.
//
// The paper's implementation stores tuned configurations and intermediate
// results in ETCD; agents watch keys and react to updates (§6). This module
// reproduces that coordination pattern: Put bumps a global revision and
// synchronously notifies watchers whose prefix matches (the simulator is
// single-threaded, so delivery order is deterministic).
//
// Degraded mode (DESIGN.md §13): a production control plane is not a
// zero-latency oracle. EnableDegradedMode turns watch delivery into
// asynchronous simulator events with a per-watcher delay distribution
// (fixed base + exponential jitter, each watcher on its own forked Rng
// stream) and a drop probability, adds partition windows during which
// deliveries are suppressed and control-plane reads fail Unavailable, and
// injects stale reads that serve the store's state at a lagged revision.
// Everything is seeded, so chaos runs stay bit-identical; with the mode off
// the store behaves exactly as before (and schedules nothing, keeping
// fault-free runs byte-identical).
//
// Two read paths exist on purpose:
//  * Get/GetRequired/List — the omniscient harness/test view; never degraded.
//  * CtrlGet/CtrlList — the control-plane view the scheduler must use while
//    a fault plan is armed; subject to partitions and stale reads, and
//    routed through src/sim/retry.h by callers.
#ifndef SRC_CLUSTER_KV_STORE_H_
#define SRC_CLUSTER_KV_STORE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/sim/simulator.h"

namespace mudi {

// Watch/read degradation knobs, all off by default. Plain data so fault
// plans can embed and validate them.
struct KvDegradeOptions {
  // Fixed delivery delay added to every watch notification.
  TimeMs watch_delay_ms = 0.0;
  // Mean of an additional exponential jitter term, drawn per delivery from
  // the watcher's own forked stream.
  TimeMs watch_delay_jitter_ms = 0.0;
  // Probability a notification is silently dropped (lost update).
  double watch_drop_prob = 0.0;
  // Probability a CtrlGet/CtrlList is served at a lagged revision.
  double stale_read_prob = 0.0;
  // Maximum revision lag of a stale read (actual lag uniform in [1, max]).
  uint64_t stale_rev_lag = 0;

  bool any() const {
    return watch_delay_ms > 0.0 || watch_delay_jitter_ms > 0.0 || watch_drop_prob > 0.0 ||
           (stale_read_prob > 0.0 && stale_rev_lag > 0);
  }
};

class KvStore {
 public:
  using WatchId = uint64_t;
  // (key, value, revision). A delete event (opt-in, see EnableDeleteEvents)
  // delivers an empty value — the tombstone convention.
  using WatchCallback = std::function<void(const std::string&, const std::string&, uint64_t)>;

  // Stores `value` under `key`, bumps the revision, fires matching watches
  // (synchronously, or as delayed/lossy simulator events in degraded mode).
  uint64_t Put(const std::string& key, const std::string& value);

  std::optional<std::string> Get(const std::string& key) const;

  // Like Get, but a missing key is an error the caller must handle — the
  // graceful-degradation path for entries a failed device deregistered.
  StatusOr<std::string> GetRequired(const std::string& key) const;

  // All (key, value) pairs whose key starts with `prefix`, key-ordered.
  std::vector<std::pair<std::string, std::string>> List(const std::string& prefix) const;

  // Deletes a key. With delete events off (the default) this fires no watch
  // notification and does not bump the revision, matching etcd's
  // delete-event being unused by the paper's agents. Returns true if the
  // key existed.
  bool Delete(const std::string& key);

  // Deletes every key starting with `prefix` (a failed device's whole
  // subtree in one call); returns the number of keys removed.
  size_t DeletePrefix(const std::string& prefix);

  // Registers a callback fired on every Put whose key starts with `prefix`.
  WatchId Watch(const std::string& prefix, WatchCallback callback);
  bool Unwatch(WatchId id);

  // --- control-plane fault surface -----------------------------------------

  // Opt-in tombstone delete events: when enabled, Delete/DeletePrefix bump
  // the revision and notify matching watchers with an empty value, so
  // recovery code can observe deregistration instead of polling. Off by
  // default; existing runs are byte-identical with the flag off.
  void EnableDeleteEvents(bool enabled) { delete_events_ = enabled; }
  bool delete_events() const { return delete_events_; }

  // Switches watch delivery to seeded asynchronous simulator events per
  // `options` and starts recording revision history for stale reads.
  // `sim` must outlive the store.
  void EnableDegradedMode(Simulator* sim, const KvDegradeOptions& options, Rng rng);
  bool degraded() const { return degraded_; }

  // Partition windows (driven by ControlFaultInjector): while partitioned,
  // watch notifications are suppressed (not delayed — lost) and
  // CtrlGet/CtrlList fail Unavailable.
  void SetPartitioned(bool partitioned) { partitioned_ = partitioned; }
  bool partitioned() const { return partitioned_; }

  // Control-plane reads: what the scheduler sees through the (possibly
  // degraded) control path. Identical to GetRequired/List when the store is
  // healthy; Unavailable during a partition; served at a lagged revision
  // with probability stale_read_prob. `read_rev` (optional) receives the
  // revision the read was served at, so callers can apply a monotonic
  // guard against stale snapshots regressing newer watch deliveries.
  StatusOr<std::string> CtrlGet(const std::string& key, uint64_t* read_rev = nullptr);
  StatusOr<std::vector<std::pair<std::string, std::string>>> CtrlList(
      const std::string& prefix, uint64_t* read_rev = nullptr);

  uint64_t revision() const { return revision_; }
  size_t size() const { return data_.size(); }

  // Degradation counters (all zero while the store is healthy).
  uint64_t watch_delivered() const { return watch_delivered_; }
  uint64_t watch_dropped() const { return watch_dropped_; }
  uint64_t watch_lost_partition() const { return watch_lost_partition_; }
  uint64_t stale_reads() const { return stale_reads_; }
  uint64_t unavailable_reads() const { return unavailable_reads_; }

 private:
  struct Watcher {
    WatchId id;
    std::string prefix;
    WatchCallback callback;
  };
  // Undo-log entry: `prev` is the value `key` held before revision `rev`
  // (nullopt = absent). Recorded only in degraded mode, bounded to
  // kMaxHistory entries, and replayed newest-first to reconstruct the store
  // at a lagged revision.
  struct UndoEntry {
    uint64_t rev;
    std::string key;
    std::optional<std::string> prev;
  };

  static constexpr size_t kMaxHistory = 4096;

  uint64_t BumpRevision(const std::string& key, std::optional<std::string> prev);
  void NotifyWatchers(const std::string& key, const std::string& value, uint64_t revision);
  void DeliverLater(const Watcher& watcher, const std::string& key, const std::string& value,
                    uint64_t revision);
  Rng& WatcherRng(WatchId id);
  // The store's contents at `target_rev`, rebuilt from the undo log.
  std::map<std::string, std::string> SnapshotAt(uint64_t target_rev) const;
  // Revision a control-plane read is served at: revision_, or a lagged
  // revision when the stale-read draw fires.
  uint64_t ReadRevision();

  uint64_t revision_ = 0;
  WatchId next_watch_id_ = 1;
  std::map<std::string, std::string> data_;
  std::vector<Watcher> watchers_;

  bool delete_events_ = false;
  bool degraded_ = false;
  bool partitioned_ = false;
  Simulator* sim_ = nullptr;
  KvDegradeOptions degrade_;
  std::optional<Rng> degrade_rng_;
  std::map<WatchId, Rng> watcher_rngs_;
  std::deque<UndoEntry> history_;

  uint64_t watch_delivered_ = 0;
  uint64_t watch_dropped_ = 0;
  uint64_t watch_lost_partition_ = 0;
  uint64_t stale_reads_ = 0;
  uint64_t unavailable_reads_ = 0;
};

}  // namespace mudi

#endif  // SRC_CLUSTER_KV_STORE_H_
