// Per-device QPS/latency Monitor (paper §3.2 module 5, §6).
//
// Tracks the measured request rate and tail latency of the inference service
// on one device. Reports when the QPS change since the last tuning trigger
// exceeds the threshold (50%, §5.3.2) so the Tuner can re-scale resources,
// and exposes windowed weighted P99 for SLO-risk detection.
#ifndef SRC_CLUSTER_MONITOR_H_
#define SRC_CLUSTER_MONITOR_H_

#include <deque>
#include <utility>

#include "src/sim/simulator.h"

namespace mudi {

class Telemetry;

class QpsMonitor {
 public:
  struct Options {
    // Width of the rate-estimation window.
    TimeMs window_ms = 5.0 * kMsPerSecond;
    // Relative change that triggers retuning (paper: 50%).
    double change_threshold = 0.5;
    // Latency window size (cohorts) for P99 tracking.
    size_t latency_window = 512;
  };

  QpsMonitor();
  explicit QpsMonitor(Options options);

  // Records `count` request arrivals at time `now`.
  void RecordArrivals(TimeMs now, double count);

  // Records a completed request latency shared by `weight` requests.
  void RecordLatency(double latency_ms, double weight = 1.0);

  // Estimated arrival rate over the trailing window.
  double CurrentQps(TimeMs now);

  // True when |qps - qps_at_last_ack| exceeds the relative threshold.
  // The caller acknowledges a trigger with AckQpsChange, resetting the base.
  bool QpsChangedBeyondThreshold(TimeMs now);
  void AckQpsChange(TimeMs now);
  double base_qps() const { return base_qps_; }

  // Weighted P99 latency over the trailing cohort window; 0 with no samples.
  double P99LatencyMs() const;
  bool has_latency_samples() const { return !latencies_.empty(); }
  void ClearLatencyWindow() { latencies_.clear(); }

  // Emits a "monitor/qps_reack" instant event on the device's trace lane and
  // counts re-acks each time the tuner acknowledges a QPS change.
  void SetTelemetry(Telemetry* telemetry, int device_id);

 private:
  void EvictOld(TimeMs now);

  Telemetry* telemetry_ = nullptr;
  int device_id_ = -1;
  Options options_;
  std::deque<std::pair<TimeMs, double>> arrivals_;  // (time, count) cohorts
  double arrivals_in_window_ = 0.0;
  double base_qps_ = -1.0;  // rate at last Ack; <0 until first Ack
  std::deque<std::pair<double, double>> latencies_;  // (latency, weight)
};

}  // namespace mudi

#endif  // SRC_CLUSTER_MONITOR_H_
