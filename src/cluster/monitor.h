// Per-device QPS/latency Monitor (paper §3.2 module 5, §6).
//
// Tracks the measured request rate and tail latency of the inference service
// on one device. Reports when the QPS change since the last tuning trigger
// exceeds the threshold (50%, §5.3.2) so the Tuner can re-scale resources,
// and exposes windowed weighted P99 for SLO-risk detection.
#ifndef SRC_CLUSTER_MONITOR_H_
#define SRC_CLUSTER_MONITOR_H_

#include <deque>
#include <optional>
#include <utility>

#include "src/sim/simulator.h"

namespace mudi {

class Telemetry;

class QpsMonitor {
 public:
  struct Options {
    // Width of the rate-estimation window.
    TimeMs window_ms = 5.0 * kMsPerSecond;
    // Relative change that triggers retuning (paper: 50%).
    double change_threshold = 0.5;
    // Latency window size (cohorts) for P99 tracking.
    size_t latency_window = 512;
  };

  QpsMonitor();
  explicit QpsMonitor(Options options);

  // Records `count` request arrivals at time `now`.
  void RecordArrivals(TimeMs now, double count);

  // Records a completed request latency shared by `weight` requests.
  void RecordLatency(double latency_ms, double weight = 1.0);

  // Estimated arrival rate over the trailing window.
  double CurrentQps(TimeMs now);

  // True when |qps - qps_at_last_ack| exceeds the relative threshold.
  // The caller acknowledges a trigger with AckQpsChange, resetting the base.
  bool QpsChangedBeyondThreshold(TimeMs now);
  void AckQpsChange(TimeMs now);
  double base_qps() const { return base_qps_; }

  // Weighted P99 latency over the trailing cohort window; 0 with no samples.
  double P99LatencyMs() const;
  bool has_latency_samples() const { return !latencies_.empty(); }
  void ClearLatencyWindow() { latencies_.clear(); }

  // --- feedback loss (fault injection) ---
  // While feedback is lost the monitor stops ingesting samples and freezes
  // CurrentQps at its value when the loss began; QpsChangedBeyondThreshold
  // never triggers on frozen data. After restoration the estimate stays
  // frozen for one window (the arrivals buffer must refill) before going
  // live again — StalenessMs reports how old the frozen value is.
  void SetFeedbackLost(bool lost, TimeMs now);
  bool feedback_lost() const { return feedback_lost_; }
  // Age of the value CurrentQps would return, or nullopt when the estimate
  // is live (not frozen, not warming up).
  std::optional<TimeMs> StalenessMs(TimeMs now) const;

  // Emits a "monitor/qps_reack" instant event on the device's trace lane and
  // counts re-acks each time the tuner acknowledges a QPS change.
  void SetTelemetry(Telemetry* telemetry, int device_id);

 private:
  void EvictOld(TimeMs now);

  Telemetry* telemetry_ = nullptr;
  int device_id_ = -1;
  Options options_;
  std::deque<std::pair<TimeMs, double>> arrivals_;  // (time, count) cohorts
  double arrivals_in_window_ = 0.0;
  double base_qps_ = -1.0;  // rate at last Ack; <0 until first Ack
  std::deque<std::pair<double, double>> latencies_;  // (latency, weight)
  bool feedback_lost_ = false;
  double frozen_qps_ = 0.0;       // CurrentQps captured when feedback was lost
  TimeMs frozen_at_ms_ = -1.0;    // when the frozen value was last fresh
  TimeMs stale_until_ms_ = -1.0;  // post-restore warm-up deadline
};

}  // namespace mudi

#endif  // SRC_CLUSTER_MONITOR_H_
