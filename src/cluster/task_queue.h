// Pending-task queue of the scheduling framework.
//
// The paper's Online Multiplexer caches submitted workloads in a queue
// scheduled FCFS (§6), but Mudi "can seamlessly integrate with various
// scheduling policies, such as shortest job first, fair sharing, and
// priority-based scheduling, without requiring any modifications to its core
// multiplexing algorithms" (§1). This queue implements those orderings; the
// multiplexing policy only ever sees the task popped next.
#ifndef SRC_CLUSTER_TASK_QUEUE_H_
#define SRC_CLUSTER_TASK_QUEUE_H_

#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "src/workload/training_trace.h"

namespace mudi {

class Telemetry;

enum class QueuePolicy : int {
  kFcfs = 0,          // first come, first served (default, §6)
  kShortestJobFirst,  // smallest remaining work first
  kPriority,          // highest priority first (ties FCFS)
  kFairShare,         // round-robin across task types
};

const char* QueuePolicyName(QueuePolicy policy);

struct PendingTask {
  TrainingArrival arrival;
  int priority = 0;  // only consulted by kPriority
};

class TaskQueue {
 public:
  explicit TaskQueue(QueuePolicy policy = QueuePolicy::kFcfs);

  void Push(PendingTask task);

  // Pops the next task per the configured policy; nullopt when empty.
  std::optional<PendingTask> Pop();

  // Next task without removing it.
  const PendingTask* Peek() const;

  size_t size() const { return tasks_.size(); }
  bool empty() const { return tasks_.empty(); }
  QueuePolicy policy() const { return policy_; }
  size_t max_depth() const { return max_depth_; }

  // Queue-depth gauge + push/pop counters ("queue.*"). Observational only.
  void SetTelemetry(Telemetry* telemetry);

 private:
  // Index of the task Pop would return, or nullopt when empty.
  std::optional<size_t> SelectIndex() const;

  void UpdateDepthMetrics();

  QueuePolicy policy_;
  std::deque<PendingTask> tasks_;
  // kFairShare round-robin cursor over task types.
  mutable size_t fair_cursor_ = 0;
  size_t max_depth_ = 0;
  Telemetry* telemetry_ = nullptr;
};

}  // namespace mudi

#endif  // SRC_CLUSTER_TASK_QUEUE_H_
