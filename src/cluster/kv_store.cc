#include "src/cluster/kv_store.h"

#include <algorithm>

namespace mudi {

namespace {
bool HasPrefix(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}
}  // namespace

uint64_t KvStore::Put(const std::string& key, const std::string& value) {
  data_[key] = value;
  ++revision_;
  // Copy the watcher list so callbacks may add/remove watches safely.
  std::vector<Watcher> snapshot = watchers_;
  for (const auto& w : snapshot) {
    if (HasPrefix(key, w.prefix)) {
      w.callback(key, value, revision_);
    }
  }
  return revision_;
}

std::optional<std::string> KvStore::Get(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<std::pair<std::string, std::string>> KvStore::List(const std::string& prefix) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (auto it = data_.lower_bound(prefix); it != data_.end() && HasPrefix(it->first, prefix);
       ++it) {
    out.emplace_back(it->first, it->second);
  }
  return out;
}

StatusOr<std::string> KvStore::GetRequired(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) {
    return NotFoundError("kv: no such key: " + key);
  }
  return it->second;
}

bool KvStore::Delete(const std::string& key) { return data_.erase(key) > 0; }

size_t KvStore::DeletePrefix(const std::string& prefix) {
  auto first = data_.lower_bound(prefix);
  auto last = first;
  size_t count = 0;
  while (last != data_.end() && HasPrefix(last->first, prefix)) {
    ++last;
    ++count;
  }
  data_.erase(first, last);
  return count;
}

KvStore::WatchId KvStore::Watch(const std::string& prefix, WatchCallback callback) {
  WatchId id = next_watch_id_++;
  watchers_.push_back(Watcher{id, prefix, std::move(callback)});
  return id;
}

bool KvStore::Unwatch(WatchId id) {
  auto it = std::find_if(watchers_.begin(), watchers_.end(),
                         [id](const Watcher& w) { return w.id == id; });
  if (it == watchers_.end()) {
    return false;
  }
  watchers_.erase(it);
  return true;
}

}  // namespace mudi
