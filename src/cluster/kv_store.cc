#include "src/cluster/kv_store.h"

#include <algorithm>
#include <utility>

namespace mudi {

namespace {
bool HasPrefix(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}
}  // namespace

uint64_t KvStore::BumpRevision(const std::string& key, std::optional<std::string> prev) {
  ++revision_;
  if (degraded_) {
    history_.push_back(UndoEntry{revision_, key, std::move(prev)});
    while (history_.size() > kMaxHistory) {
      history_.pop_front();
    }
  }
  return revision_;
}

uint64_t KvStore::Put(const std::string& key, const std::string& value) {
  auto it = data_.find(key);
  std::optional<std::string> prev =
      it == data_.end() ? std::nullopt : std::optional<std::string>(it->second);
  data_[key] = value;
  uint64_t revision = BumpRevision(key, std::move(prev));
  NotifyWatchers(key, value, revision);
  return revision;
}

void KvStore::NotifyWatchers(const std::string& key, const std::string& value,
                             uint64_t revision) {
  // Copy the watcher list so callbacks may add/remove watches safely.
  std::vector<Watcher> snapshot = watchers_;
  bool async = degraded_ && (degrade_.watch_delay_ms > 0.0 ||
                             degrade_.watch_delay_jitter_ms > 0.0 ||
                             degrade_.watch_drop_prob > 0.0);
  for (const auto& w : snapshot) {
    if (!HasPrefix(key, w.prefix)) {
      continue;
    }
    if (degraded_ && partitioned_) {
      // A partitioned watch stream does not buffer: updates inside the
      // window are lost and consumers must catch up once it heals. This
      // holds even when delay/drop knobs are all zero (a plan may arm
      // partitions without degrading delivery).
      ++watch_lost_partition_;
      continue;
    }
    if (!async) {
      w.callback(key, value, revision);
      continue;
    }
    DeliverLater(w, key, value, revision);
  }
}

void KvStore::DeliverLater(const Watcher& watcher, const std::string& key,
                           const std::string& value, uint64_t revision) {
  Rng& rng = WatcherRng(watcher.id);
  if (degrade_.watch_drop_prob > 0.0 && rng.Uniform() < degrade_.watch_drop_prob) {
    ++watch_dropped_;
    return;
  }
  TimeMs delay = degrade_.watch_delay_ms;
  if (degrade_.watch_delay_jitter_ms > 0.0) {
    delay += rng.ExponentialMean(degrade_.watch_delay_jitter_ms);
  }
  WatchId id = watcher.id;
  sim_->ScheduleAfter(delay, [this, id, key, value, revision] {
    // Deliver only if the watch is still registered (a watch-loss event or
    // Unwatch in the meantime kills in-flight notifications too). A
    // re-established watch has a fresh id, so it never receives deliveries
    // aimed at its predecessor.
    for (const auto& w : watchers_) {
      if (w.id == id) {
        ++watch_delivered_;
        w.callback(key, value, revision);
        return;
      }
    }
    ++watch_dropped_;
  });
}

Rng& KvStore::WatcherRng(WatchId id) {
  auto it = watcher_rngs_.find(id);
  if (it == watcher_rngs_.end()) {
    it = watcher_rngs_.emplace(id, degrade_rng_->Fork(id)).first;
  }
  return it->second;
}

std::optional<std::string> KvStore::Get(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<std::pair<std::string, std::string>> KvStore::List(const std::string& prefix) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (auto it = data_.lower_bound(prefix); it != data_.end() && HasPrefix(it->first, prefix);
       ++it) {
    out.emplace_back(it->first, it->second);
  }
  return out;
}

StatusOr<std::string> KvStore::GetRequired(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) {
    return NotFoundError("kv: no such key: " + key);
  }
  return it->second;
}

bool KvStore::Delete(const std::string& key) {
  auto it = data_.find(key);
  if (it == data_.end()) {
    return false;
  }
  if (!delete_events_) {
    data_.erase(it);
    return true;
  }
  std::optional<std::string> prev = it->second;
  data_.erase(it);
  uint64_t revision = BumpRevision(key, std::move(prev));
  NotifyWatchers(key, "", revision);
  return true;
}

size_t KvStore::DeletePrefix(const std::string& prefix) {
  if (!delete_events_) {
    auto first = data_.lower_bound(prefix);
    auto last = first;
    size_t count = 0;
    while (last != data_.end() && HasPrefix(last->first, prefix)) {
      ++last;
      ++count;
    }
    data_.erase(first, last);
    return count;
  }
  // Key-ordered per-key deletes so each emits its own tombstone event.
  std::vector<std::string> keys;
  for (auto it = data_.lower_bound(prefix); it != data_.end() && HasPrefix(it->first, prefix);
       ++it) {
    keys.push_back(it->first);
  }
  for (const std::string& key : keys) {
    MUDI_CHECK(Delete(key));
  }
  return keys.size();
}

KvStore::WatchId KvStore::Watch(const std::string& prefix, WatchCallback callback) {
  WatchId id = next_watch_id_++;
  watchers_.push_back(Watcher{id, prefix, std::move(callback)});
  return id;
}

bool KvStore::Unwatch(WatchId id) {
  auto it = std::find_if(watchers_.begin(), watchers_.end(),
                         [id](const Watcher& w) { return w.id == id; });
  if (it == watchers_.end()) {
    return false;
  }
  watchers_.erase(it);
  return true;
}

void KvStore::EnableDegradedMode(Simulator* sim, const KvDegradeOptions& options, Rng rng) {
  MUDI_CHECK(sim != nullptr);
  sim_ = sim;
  degrade_ = options;
  degrade_rng_.emplace(rng);
  degraded_ = true;
}

std::map<std::string, std::string> KvStore::SnapshotAt(uint64_t target_rev) const {
  std::map<std::string, std::string> snapshot = data_;
  // Undo newest-first down to the target. The log is bounded, so very old
  // targets clamp to the oldest reconstructable revision — an even staler
  // read, which is the right failure direction for chaos.
  for (auto it = history_.rbegin(); it != history_.rend() && it->rev > target_rev; ++it) {
    if (it->prev.has_value()) {
      snapshot[it->key] = *it->prev;
    } else {
      snapshot.erase(it->key);
    }
  }
  return snapshot;
}

uint64_t KvStore::ReadRevision() {
  if (!degraded_ || degrade_.stale_read_prob <= 0.0 || degrade_.stale_rev_lag == 0 ||
      revision_ == 0) {
    return revision_;
  }
  if (degrade_rng_->Uniform() >= degrade_.stale_read_prob) {
    return revision_;
  }
  uint64_t lag =
      static_cast<uint64_t>(degrade_rng_->UniformInt(1, static_cast<int64_t>(degrade_.stale_rev_lag)));
  ++stale_reads_;
  return revision_ > lag ? revision_ - lag : 0;
}

StatusOr<std::string> KvStore::CtrlGet(const std::string& key, uint64_t* read_rev) {
  if (partitioned_) {
    ++unavailable_reads_;
    return UnavailableError("kv: partitioned, cannot read: " + key);
  }
  uint64_t rev = ReadRevision();
  if (read_rev != nullptr) {
    *read_rev = rev;
  }
  if (rev == revision_) {
    return GetRequired(key);
  }
  std::map<std::string, std::string> snapshot = SnapshotAt(rev);
  auto it = snapshot.find(key);
  if (it == snapshot.end()) {
    return NotFoundError("kv: no such key at revision " + std::to_string(rev) + ": " + key);
  }
  return it->second;
}

StatusOr<std::vector<std::pair<std::string, std::string>>> KvStore::CtrlList(
    const std::string& prefix, uint64_t* read_rev) {
  if (partitioned_) {
    ++unavailable_reads_;
    return UnavailableError("kv: partitioned, cannot list: " + prefix);
  }
  uint64_t rev = ReadRevision();
  if (read_rev != nullptr) {
    *read_rev = rev;
  }
  if (rev == revision_) {
    return List(prefix);
  }
  std::map<std::string, std::string> snapshot = SnapshotAt(rev);
  std::vector<std::pair<std::string, std::string>> out;
  for (auto it = snapshot.lower_bound(prefix);
       it != snapshot.end() && HasPrefix(it->first, prefix); ++it) {
    out.emplace_back(it->first, it->second);
  }
  return out;
}

}  // namespace mudi
