// The multiplexing-policy framework: the contract between the cluster
// experiment harness (src/exp) and the multiplexing systems (Mudi in
// src/core, the baselines in src/baselines).
//
// A SchedulingEnv is the runtime view a deployed system has of the cluster:
// device state, monitor-measured QPS and tail latency, online what-if probes
// (observing a candidate configuration briefly — noisy, like real
// measurements), and configuration actuation. A MultiplexPolicy makes the
// decisions the paper studies: cluster-wide placement of arriving training
// tasks and device-level (batch, GPU%) configuration.
//
// GROUND-TRUTH ACCESS: env.oracle() exposes the noise-free performance
// oracle. Only the Optimal baseline (exhaustive search, §5.4/§7.2) may use
// it; every other policy must rely on probes, monitors, and its own models.
#ifndef SRC_CLUSTER_POLICY_H_
#define SRC_CLUSTER_POLICY_H_

#include <optional>
#include <string>
#include <vector>

#include "src/gpu/gpu_device.h"
#include "src/gpu/perf_oracle.h"
#include "src/sim/simulator.h"
#include "src/workload/models.h"

namespace mudi {

class Telemetry;
namespace perf {
class PerfCollector;
}  // namespace perf
namespace replay {
class DecisionSink;
class PredictionReplay;
}  // namespace replay

// Planning latency budget for one batch (paper Eq. 2 first constraint):
// (W/b)·P <= SLO  ⇔  P <= SLO·b/W. The literal constraint alone permits
// busy-time above one second per second whenever SLO > 1000 ms (YOLOS),
// which is queue-unstable; production planners additionally cap utilization.
// We use budget = min(SLO, kStabilityCapMs)·b/W, keeping 15% headroom.
inline constexpr double kStabilityCapMs = 800.0;

inline double PlanningLatencyBudgetMs(int batch, double qps, double slo_ms) {
  double effective = slo_ms < kStabilityCapMs ? slo_ms : kStabilityCapMs;
  return effective * static_cast<double>(batch) / qps;
}

// What a policy learns about an arriving training task. The spec carries the
// network architecture (extracted by the Training Agent, §4.2); the total
// work is intentionally NOT exposed — production schedulers do not know task
// durations in advance (the SJF queue policy uses user-declared estimates,
// handled by the queue, not here).
struct TrainingTaskInfo {
  int task_id = -1;
  size_t type_index = 0;
  const TrainingTaskSpec* spec = nullptr;
};

class SchedulingEnv {
 public:
  virtual ~SchedulingEnv() = default;

  virtual TimeMs Now() const = 0;

  virtual std::vector<GpuDevice>& devices() = 0;
  virtual const GpuDevice& device(int device_id) const = 0;

  // The inference service hosted on a device (every device hosts exactly one
  // replica in the paper's deployment).
  virtual const InferenceServiceSpec& ServiceOnDevice(int device_id) const = 0;

  // Monitor-measured arrival rate / windowed P99 of the device's service.
  virtual double MeasuredQps(int device_id) = 0;
  virtual double MeasuredP99(int device_id) = 0;

  // What-if probes: the observed (noisy) value if the given configuration
  // ran briefly under the device's *current* co-location. `train_fraction`
  // etc. override only the probed knob; everything else stays as deployed.
  virtual double ProbeInferenceLatencyMs(int device_id, int batch, double gpu_fraction) = 0;
  // `inf_batch` / `inf_fraction` optionally override the deployed inference
  // configuration for the what-if; pass <= 0 to keep the current value.
  virtual double ProbeTrainingIterMs(int device_id, int task_id, double train_fraction,
                                     int inf_batch = 0, double inf_fraction = 0.0) = 0;

  // Configuration actuation. Batch updates take effect immediately (a
  // parameter of the serving loop); GPU% updates go through the
  // shadow-instance restart and take effect after the reconfiguration
  // latency (§5.3.2).
  virtual void ApplyInferenceConfig(int device_id, int batch, double gpu_fraction) = 0;
  virtual void ApplyTrainingFraction(int device_id, int task_id, double fraction) = 0;
  // Preemptively pause/resume a training task (§5.3.2 bursty-QPS fallback).
  virtual void SetTrainingPaused(int device_id, int task_id, bool paused) = 0;

  // True when the task's full working set fits device memory alongside the
  // current residents (no swap needed).
  virtual bool CanFitTraining(int device_id, const TrainingTaskSpec& spec) const = 0;

  // Ground truth — Optimal baseline ONLY (see file comment).
  virtual const PerfOracle& oracle() const = 0;

  // Telemetry sink for decision tracing; null when the harness runs without
  // telemetry. Policies must treat it as observational only.
  virtual Telemetry* telemetry() { return nullptr; }

  // Self-profiling collector (src/perf) for scoped wall-time regions and
  // counters; null when the harness runs unprofiled. Observe-only, like
  // telemetry: a profiled and an unprofiled run must be bit-identical.
  virtual perf::PerfCollector* perf() { return nullptr; }

  // Decision-trace sink (src/cluster/replay_hooks.h, implemented by
  // replay::DecisionRecorder); null when the run is not being recorded.
  // Observe-only, like telemetry and perf: a recorded run must be
  // bit-identical to an unrecorded same-seed run. Policies use it to attach
  // candidate sets/scores to the decision the harness opened.
  virtual replay::DecisionSink* recorder() { return nullptr; }

  // Recorded-observation source (replay_hooks.h, implemented by
  // replay::ReplaySource); non-null only in replay mode. Policies that fit
  // models from offline profiles (Mudi) check it in Initialize to preload
  // recorded curves instead of re-profiling.
  virtual replay::PredictionReplay* replay() { return nullptr; }
};

class MultiplexPolicy {
 public:
  virtual ~MultiplexPolicy() = default;

  virtual std::string name() const = 0;

  // Called once before the run starts (offline profiling happens here).
  virtual void Initialize(SchedulingEnv& env) { (void)env; }

  // Cluster-wide decision: device for an arriving training task, or nullopt
  // to leave it queued until capacity frees up.
  virtual std::optional<int> SelectDevice(SchedulingEnv& env, const TrainingTaskInfo& task) = 0;

  // Device-level decision(s) right after the harness placed the task.
  virtual void OnTrainingPlaced(SchedulingEnv& env, int device_id,
                                const TrainingTaskInfo& task) = 0;

  virtual void OnTrainingCompleted(SchedulingEnv& env, int device_id, int task_id) {
    (void)env;
    (void)device_id;
    (void)task_id;
  }

  // Monitor trigger: QPS change beyond threshold or SLO at risk (§5.3.2).
  virtual void OnQpsChange(SchedulingEnv& env, int device_id) {
    (void)env;
    (void)device_id;
  }

  // --- failure notifications (fault-injection harness) ---
  // The device died. `displaced` lists the training tasks that were resident
  // there; the harness has already removed them, rolled their progress back
  // to the last checkpoint, and requeued them — the policy only needs to
  // drop any per-device state (cached profiles, pending tuning). The device
  // must not be probed or reconfigured from here. Default: no-op, which is
  // safe for the stateless baselines.
  virtual void OnDeviceFailed(SchedulingEnv& env, int device_id,
                              const std::vector<TrainingTaskInfo>& displaced) {
    (void)env;
    (void)device_id;
    (void)displaced;
  }

  // The device came back after a transient failure: its inference replica
  // was restarted with the initial configuration and its monitor starts
  // fresh (the next QPS observation re-triggers tuning). Default: no-op.
  virtual void OnDeviceRecovered(SchedulingEnv& env, int device_id) {
    (void)env;
    (void)device_id;
  }

  // The scheduler/coordinator process restarted after a crash and just
  // finished reconstructing its view from a KvStore scan (DESIGN.md §13).
  // Device and task state observed through the control plane may have been
  // stale while the scheduler was down, so stateful policies should drop
  // derived caches (fit/tune/interference snapshots) and let the next
  // monitor trigger re-converge. Default: no-op, safe for the stateless
  // baselines.
  virtual void OnControlPlaneRestart(SchedulingEnv& env) { (void)env; }

  // Max co-located training tasks per device (1 for Mudi, 3 for Mudi-more).
  virtual int MaxTrainingsPerDevice() const { return 1; }

  // Whether the harness may overcommit memory and swap training state to the
  // host (Mudi's Memory Manager, §5.6). Policies without swap must only
  // place where CanFitTraining holds.
  virtual bool SupportsMemorySwap() const { return false; }

  // --- overhead accounting (Fig. 18) ---
  const std::vector<double>& placement_overheads_ms() const { return placement_overheads_ms_; }
  const std::vector<size_t>& tuning_iterations() const { return tuning_iterations_; }

 protected:
  void RecordPlacementOverhead(double ms) { placement_overheads_ms_.push_back(ms); }
  void RecordTuningIterations(size_t n) { tuning_iterations_.push_back(n); }

 private:
  std::vector<double> placement_overheads_ms_;
  std::vector<size_t> tuning_iterations_;
};

}  // namespace mudi

#endif  // SRC_CLUSTER_POLICY_H_
