#include "src/cluster/task_queue.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/telemetry/telemetry.h"
#include "src/workload/models.h"

namespace mudi {

const char* QueuePolicyName(QueuePolicy policy) {
  switch (policy) {
    case QueuePolicy::kFcfs:
      return "FCFS";
    case QueuePolicy::kShortestJobFirst:
      return "SJF";
    case QueuePolicy::kPriority:
      return "Priority";
    case QueuePolicy::kFairShare:
      return "FairShare";
  }
  return "?";
}

TaskQueue::TaskQueue(QueuePolicy policy) : policy_(policy) {}

void TaskQueue::SetTelemetry(Telemetry* telemetry) {
  telemetry_ = (telemetry != nullptr && telemetry->enabled()) ? telemetry : nullptr;
}

void TaskQueue::UpdateDepthMetrics() {
  max_depth_ = std::max(max_depth_, tasks_.size());
  if (telemetry_ != nullptr) {
    auto& metrics = telemetry_->metrics();
    metrics.GetGauge("queue.depth").Set(static_cast<double>(tasks_.size()));
    metrics.GetGauge("queue.max_depth").Set(static_cast<double>(max_depth_));
  }
}

void TaskQueue::Push(PendingTask task) {
  tasks_.push_back(std::move(task));
  if (telemetry_ != nullptr) {
    telemetry_->metrics().GetCounter("queue.pushed").Increment();
  }
  UpdateDepthMetrics();
}

std::optional<size_t> TaskQueue::SelectIndex() const {
  if (tasks_.empty()) {
    return std::nullopt;
  }
  switch (policy_) {
    case QueuePolicy::kFcfs:
      return 0;
    case QueuePolicy::kShortestJobFirst: {
      size_t best = 0;
      for (size_t i = 1; i < tasks_.size(); ++i) {
        if (tasks_[i].arrival.work_full_gpu_ms < tasks_[best].arrival.work_full_gpu_ms) {
          best = i;
        }
      }
      return best;
    }
    case QueuePolicy::kPriority: {
      size_t best = 0;
      for (size_t i = 1; i < tasks_.size(); ++i) {
        if (tasks_[i].priority > tasks_[best].priority) {
          best = i;
        }
      }
      return best;
    }
    case QueuePolicy::kFairShare: {
      // Round-robin over task types, starting at the cursor.
      size_t num_types = ModelZoo::TrainingTasks().size();
      for (size_t offset = 0; offset < num_types; ++offset) {
        size_t type = (fair_cursor_ + offset) % num_types;
        for (size_t i = 0; i < tasks_.size(); ++i) {
          if (tasks_[i].arrival.type_index == type) {
            return i;
          }
        }
      }
      return 0;
    }
  }
  MUDI_CHECK(false);
  __builtin_unreachable();
}

std::optional<PendingTask> TaskQueue::Pop() {
  auto idx = SelectIndex();
  if (!idx.has_value()) {
    return std::nullopt;
  }
  PendingTask task = std::move(tasks_[*idx]);
  tasks_.erase(tasks_.begin() + static_cast<long>(*idx));
  if (policy_ == QueuePolicy::kFairShare) {
    fair_cursor_ = (task.arrival.type_index + 1) % ModelZoo::TrainingTasks().size();
  }
  if (telemetry_ != nullptr) {
    telemetry_->metrics().GetCounter("queue.popped").Increment();
  }
  UpdateDepthMetrics();
  return task;
}

const PendingTask* TaskQueue::Peek() const {
  auto idx = SelectIndex();
  if (!idx.has_value()) {
    return nullptr;
  }
  return &tasks_[*idx];
}

}  // namespace mudi
