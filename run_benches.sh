#!/bin/bash
# Runs the full reproduction campaign; one output file per table/figure.
cd /root/repo
for b in bench_fig01_traces bench_fig02_training_traces bench_fig03_inf_inf_interference \
         bench_fig04_inf_train_interference bench_fig05_latency_curves bench_fig07_layer_census \
         bench_tab02_fitting_error bench_fig11_model_accuracy bench_fig12_incremental \
         bench_fig16_bursty_case bench_tab04_swap_fraction bench_micro_substrates \
         bench_fig13_ablation bench_fig10_utilization bench_fig17_mudi_more \
         bench_fig15_load_sensitivity bench_fig14_max_throughput bench_fig18_overhead \
         bench_fig08_slo_violation bench_fig09_training_eff; do
  echo "=== RUNNING $b ==="
  # Each experiment run appends one labeled JSON line (counters, gauges,
  # histograms — queue depth, utilization, decision counts) to the bench's
  # telemetry file, giving every bench table its scheduling context.
  MUDI_TELEMETRY_JSON=bench_results/BENCH_$b.json \
    ./build/bench/$b > bench_results/$b.txt 2> bench_results/$b.err
  echo "=== DONE $b (rc=$?) ==="
done
echo CAMPAIGN_COMPLETE
