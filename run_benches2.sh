#!/bin/bash
cd /root/repo
for b in bench_fig15_load_sensitivity bench_fig17_mudi_more bench_tab04_swap_fraction \
         bench_fig14_max_throughput bench_fig18_overhead; do
  echo "=== RUNNING $b ==="
  MUDI_TELEMETRY_JSON=bench_results/BENCH_$b.json \
    ./build/bench/$b > bench_results/$b.txt 2> bench_results/$b.err
  echo "=== DONE $b (rc=$?) ==="
done
export MUDI_BENCH_SCALE=0.3
echo "=== RUNNING bench_fig08_slo_violation (scale 0.3) ==="
MUDI_TELEMETRY_JSON=bench_results/BENCH_bench_fig08_slo_violation.json \
  ./build/bench/bench_fig08_slo_violation > bench_results/bench_fig08_slo_violation.txt 2> bench_results/bench_fig08_slo_violation.err
echo "=== DONE bench_fig08_slo_violation (rc=$?) ==="
echo "=== RUNNING bench_fig09_training_eff (scale 0.3) ==="
MUDI_TELEMETRY_JSON=bench_results/BENCH_bench_fig09_training_eff.json \
  ./build/bench/bench_fig09_training_eff > bench_results/bench_fig09_training_eff.txt 2> bench_results/bench_fig09_training_eff.err
echo "=== DONE bench_fig09_training_eff (rc=$?) ==="
echo CAMPAIGN2_COMPLETE
